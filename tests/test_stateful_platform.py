"""Stateful property test: the platform under random lifecycle sequences.

Hypothesis drives random create/terminate/fail/recover sequences against a
small fleet and checks the core safety invariants after every step:

* no node ever exceeds its core/memory capacity;
* the trace store and the allocator agree on who is alive and where;
* released resources are really released (conservation).
"""

from __future__ import annotations

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.cloud.entities import RegionSpec, TopologySpec, build_topology
from repro.cloud.faults import FailureInjector
from repro.cloud.platform import CloudPlatform, VMRequest
from repro.cloud.sku import NodeSku, VMSku
from repro.telemetry.schema import Cloud
from repro.telemetry.store import TraceStore

SKUS = (VMSku("s1", 1, 4), VMSku("s2", 2, 8), VMSku("s4", 4, 16), VMSku("s8", 8, 32))


class PlatformMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        spec = TopologySpec(
            cloud=Cloud.PRIVATE,
            regions=(RegionSpec("a", 0), RegionSpec("b", 0)),
            clusters_per_region=1,
            racks_per_cluster=2,
            nodes_per_rack=2,
            node_sku=NodeSku("n", 16, 64),
        )
        self.platform = CloudPlatform(
            build_topology(spec), TraceStore(), rng=np.random.default_rng(0)
        )
        self.injector = FailureInjector(self.platform)
        self.clock = 0.0
        self.live: set[int] = set()
        self.down_nodes: set[int] = set()

    def _tick(self) -> float:
        self.clock += 60.0
        return self.clock

    @rule(
        sku_idx=st.integers(0, len(SKUS) - 1),
        region=st.sampled_from(["a", "b"]),
        sub=st.integers(1, 4),
    )
    def create(self, sku_idx, region, sub):
        vm_id = self.platform.create_vm(
            VMRequest(
                subscription_id=sub,
                deployment_id=sub,
                service="svc",
                region=region,
                sku=SKUS[sku_idx],
            ),
            self._tick(),
        )
        if vm_id is not None:
            self.live.add(vm_id)

    @rule(pick=st.randoms(use_true_random=False))
    def terminate(self, pick):
        if not self.live:
            return
        vm_id = pick.choice(sorted(self.live))
        self.platform.terminate_vm(vm_id, self._tick())
        self.live.discard(vm_id)

    @rule(pick=st.randoms(use_true_random=False))
    def fail_node(self, pick):
        up_nodes = [
            n for n in self.platform.topology.nodes if n not in self.down_nodes
        ]
        if not up_nodes:
            return
        node_id = pick.choice(sorted(up_nodes))
        outcome = self.injector.fail_node(node_id, self._tick())
        self.down_nodes.add(node_id)
        for vm_id, new_node in outcome.items():
            if new_node is None:
                self.live.discard(vm_id)  # lost: no capacity elsewhere

    @rule(pick=st.randoms(use_true_random=False))
    def recover_node(self, pick):
        if not self.down_nodes:
            return
        node_id = pick.choice(sorted(self.down_nodes))
        self.injector.recover_node(node_id)
        self.down_nodes.discard(node_id)

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    @invariant()
    def nodes_never_overcommitted(self):
        for node in self.platform.topology.nodes.values():
            assert node.used_cores <= node.capacity_cores + 1e-9
            assert node.used_memory_gb <= node.capacity_memory_gb + 1e-9
            booked = sum(c for c, _m in node.hosted.values())
            assert abs(booked - node.used_cores) < 1e-9

    @invariant()
    def store_and_allocator_agree(self):
        assert self.platform.allocated_vm_count == len(self.live)
        for vm_id in self.live:
            node = self.platform.allocator.node_of(vm_id)
            assert node is not None
            assert vm_id in node.hosted
            record = self.platform.store.vm(vm_id)
            assert record.node_id == node.node_id
            assert record.ended_at == float("inf")

    @invariant()
    def dead_vms_are_finalized(self):
        for vm in self.platform.store.vms():
            if vm.vm_id not in self.live:
                assert vm.ended_at != float("inf")
                assert self.platform.allocator.node_of(vm.vm_id) is None

    @invariant()
    def live_vms_not_on_down_nodes_after_failure(self):
        for vm_id in self.live:
            node = self.platform.allocator.node_of(vm_id)
            # A node that failed had its VMs migrated off; recovered nodes
            # may host again.
            assert node.node_id not in self.down_nodes


TestPlatformStateMachine = PlatformMachine.TestCase
TestPlatformStateMachine.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)
