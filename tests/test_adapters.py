"""Tests for the AzurePublicDataset adapter."""

from __future__ import annotations

import pytest

from repro.core import deployment as dep
from repro.telemetry.adapters import (
    AZURE_PUBLIC_DURATION,
    load_azure_public_readings,
    load_azure_public_vm_table,
)
from repro.telemetry.schema import Cloud


@pytest.fixture()
def vmtable(tmp_path):
    """A small synthetic vmtable.csv in the public dataset's layout."""
    rows = [
        # vmid, subid, depid, created, deleted, maxcpu, avgcpu, p95, cat, cores, mem
        "vmA,sub1,dep1,0,3600,90,12,70,Interactive,4,16",
        "vmB,sub1,dep1,100,,80,8,60,Interactive,4,16",          # censored
        "vmC,sub2,dep2,7200,10800,50,30,45,Delay-insensitive,2,8",
        "vmD,sub2,dep3,0,2592000,20,5,15,Unknown,8,32",          # ends at window edge
        "vmE,sub3,dep4,500,1500,99,60,95,Delay-insensitive,1,2",
    ]
    path = tmp_path / "vmtable.csv"
    path.write_text("\n".join(rows) + "\n")
    return path


def test_load_basic(vmtable):
    store = load_azure_public_vm_table(vmtable)
    assert len(store) == 5
    assert len(store.subscriptions) == 3
    assert store.metadata.duration == AZURE_PUBLIC_DURATION


def test_censoring(vmtable):
    store = load_azure_public_vm_table(vmtable)
    censored = [vm for vm in store.vms() if not vm.completed]
    # vmB (empty deleted) and vmD (deleted at exactly the window edge).
    assert len(censored) == 2


def test_ids_are_dense_and_stable(vmtable):
    a = load_azure_public_vm_table(vmtable)
    b = load_azure_public_vm_table(vmtable)
    assert sorted(vm.vm_id for vm in a.vms()) == [0, 1, 2, 3, 4]
    assert {vm.vm_id for vm in a.vms()} == {vm.vm_id for vm in b.vms()}


def test_deployment_analyses_run_on_adapter_output(vmtable):
    store = load_azure_public_vm_table(vmtable)
    cdf = dep.lifetime_cdf(store, Cloud.PUBLIC)
    assert cdf.n_samples == 3  # three completed VMs (two share a lifetime)
    sizes = dep.vm_size_heatmap(store, Cloud.PUBLIC)
    assert sizes.total_mass == pytest.approx(1.0)


def test_max_rows(vmtable):
    store = load_azure_public_vm_table(vmtable, max_rows=2)
    assert len(store) == 2


def test_malformed_row_raises(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("only,three,columns\n")
    with pytest.raises(ValueError):
        load_azure_public_vm_table(path)


def test_header_skipping(tmp_path, vmtable):
    with_header = tmp_path / "with_header.csv"
    with_header.write_text(
        "vmid,subscriptionid,deploymentid,vmcreated,vmdeleted,maxcpu,avgcpu,"
        "p95maxcpu,vmcategory,vmcorecount,vmmemory\n" + vmtable.read_text()
    )
    store = load_azure_public_vm_table(with_header, has_header=True)
    assert len(store) == 5


def test_readings_attach(tmp_path, vmtable):
    store = load_azure_public_vm_table(vmtable)
    readings = tmp_path / "readings.csv"
    # timestamp, vmid, mincpu, maxcpu, avgcpu  (vm ids as dense ints)
    rows = [
        "0,0,1,90,50",
        "300,0,1,90,25",
        "0,2,0,50,10",
        "999999999,0,0,0,99",   # out of window: ignored
    ]
    readings.write_text("\n".join(rows) + "\n")
    n = load_azure_public_readings(store, readings)
    assert n == 2
    series = store.utilization(0)
    assert series[0] == pytest.approx(0.5)
    assert series[1] == pytest.approx(0.25)
    assert series[2] == 0.0


def test_readings_clip_to_unit_interval(tmp_path, vmtable):
    store = load_azure_public_vm_table(vmtable)
    readings = tmp_path / "readings.csv"
    readings.write_text("0,0,0,100,250\n")  # 250% clipped to 1.0
    load_azure_public_readings(store, readings)
    assert store.utilization(0)[0] == 1.0
