"""Hypothesis-optional property-testing helpers.

CI environments install only ``numpy scipy pytest``, so property-based
tests must not *require* hypothesis.  Import ``given``/``settings``/``st``
from here and branch on :data:`HAVE_HYPOTHESIS`: when hypothesis is
available the real strategies run; otherwise tests fall back to
deterministic stdlib-``random`` sweeps built from :func:`seeded_rngs`.
Both paths exercise the same property function, so coverage degrades in
example count, never in what is asserted.
"""

from __future__ import annotations

import random

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised only on minimal installs
    given = None
    settings = None
    st = None
    HAVE_HYPOTHESIS = False


def seeded_rngs(n: int = 10, seed: int = 0xC10D) -> list[random.Random]:
    """``n`` independent deterministic RNGs for a stdlib fallback sweep.

    Each case gets its own generator (derived from one base seed) so a
    failing case can be re-run in isolation by its index.
    """
    base = random.Random(seed)
    return [random.Random(base.getrandbits(64)) for _ in range(n)]
