"""Unit/integration tests for the Section IV-B similarity analyses."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import correlation as corr
from repro.obs import MetricsScope
from repro.telemetry.schema import Cloud, NodeInfo, RegionInfo, SubscriptionInfo
from repro.telemetry.store import TraceStore
from tests.test_store import make_vm


@pytest.fixture()
def correlated_store():
    """Two nodes: one with correlated VMs, one with a single VM (trivial)."""
    store = TraceStore()
    store.add_region(RegionInfo(name="us-east", tz_offset_hours=-5, country="US"))
    store.add_region(RegionInfo(name="us-west", tz_offset_hours=-8, country="US"))
    store.add_region(RegionInfo(name="europe", tz_offset_hours=1, country="EU"))
    for node_id in (0, 1):
        store.add_node(
            NodeInfo(node_id=node_id, cluster_id=0, rack_id=0, region="us-east",
                     cloud=Cloud.PRIVATE, capacity_cores=16, capacity_memory_gb=64)
        )
    n = store.metadata.n_samples
    t = np.linspace(0, 14 * np.pi, n)
    base = 0.3 + 0.2 * np.sin(t)
    rng = np.random.default_rng(0)
    # Node 0: two highly correlated VMs.
    store.add_vm(make_vm(1, node_id=0, subscription_id=100, region="us-east"))
    store.add_vm(make_vm(2, node_id=0, subscription_id=100, region="us-east"))
    store.add_utilization(1, np.clip(base + rng.normal(0, 0.01, n), 0, 1))
    store.add_utilization(2, np.clip(base + rng.normal(0, 0.01, n), 0, 1))
    # Node 1: single VM -> excluded as trivial.
    store.add_vm(make_vm(3, node_id=1, subscription_id=101, region="us-east"))
    store.add_utilization(3, np.clip(base, 0, 1))
    # Subscription 100 also deploys in us-west with the same pattern and in
    # europe (excluded by the US filter).
    store.add_vm(make_vm(4, node_id=0, subscription_id=100, region="us-west"))
    store.add_utilization(4, np.clip(base + rng.normal(0, 0.01, n), 0, 1))
    store.add_vm(make_vm(5, node_id=0, subscription_id=100, region="europe"))
    store.add_utilization(5, np.clip(1 - base, 0, 1))
    store.add_subscription(
        SubscriptionInfo(subscription_id=100, cloud=Cloud.PRIVATE, service="svc",
                         regions=("us-east", "us-west", "europe"))
    )
    store.add_subscription(
        SubscriptionInfo(subscription_id=101, cloud=Cloud.PRIVATE, service="other")
    )
    return store


class TestNodeLevel:
    def test_high_correlation_detected(self, correlated_store):
        cdf = corr.node_level_correlation(correlated_store, Cloud.PRIVATE)
        assert cdf.median > 0.9

    def test_trivial_nodes_excluded(self, correlated_store):
        cdf = corr.node_level_correlation(correlated_store, Cloud.PRIVATE)
        # VM 3 (single-VM node) must not contribute: node 0 hosts 4 VMs.
        assert cdf.n_samples == 4

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            corr.node_level_correlation(TraceStore(), Cloud.PRIVATE)

    def test_private_exceeds_public_on_generated_trace(self, medium_trace):
        private = corr.node_level_correlation(medium_trace, Cloud.PRIVATE)
        public = corr.node_level_correlation(medium_trace, Cloud.PUBLIC)
        assert private.median > public.median + 0.2

    def test_no_constant_pairs_reports_zero(self, correlated_store):
        cdf = corr.node_level_correlation(correlated_store, Cloud.PRIVATE)
        assert cdf.n_constant_pairs == 0


class TestConstantPairAccounting:
    @pytest.fixture()
    def store_with_constant_vm(self, correlated_store):
        """Add an always-idle VM to the multi-VM node of correlated_store."""
        n = correlated_store.metadata.n_samples
        correlated_store.add_vm(
            make_vm(6, node_id=0, subscription_id=100, region="us-east")
        )
        correlated_store.add_utilization(6, np.full(n, 0.25))
        return correlated_store

    def test_node_level_counts_constant_pairs(self, store_with_constant_vm):
        with MetricsScope() as scope:
            cdf = corr.node_level_correlation(store_with_constant_vm, Cloud.PRIVATE)
        # The idle VM's Pearson r is undefined (zero variance) -- it is
        # skipped from the CDF but accounted for, not silently dropped.
        assert cdf.n_constant_pairs == 1
        assert cdf.n_samples == 4
        assert scope.delta["counters"]["correlation.constant_pairs"] == 1.0

    def test_region_level_counts_constant_pairs(self, correlated_store):
        n = correlated_store.metadata.n_samples
        # Subscription 102 deploys a constant-load VM in two US regions, so
        # its single region pair has undefined correlation.
        for vm_id, region in ((7, "us-east"), (8, "us-west")):
            correlated_store.add_vm(
                make_vm(vm_id, node_id=0, subscription_id=102, region=region)
            )
            correlated_store.add_utilization(vm_id, np.full(n, 0.5))
        correlated_store.add_subscription(
            SubscriptionInfo(
                subscription_id=102,
                cloud=Cloud.PRIVATE,
                service="idle",
                regions=("us-east", "us-west"),
            )
        )
        with MetricsScope() as scope:
            cdf = corr.region_level_correlation(correlated_store, Cloud.PRIVATE)
        assert cdf.n_constant_pairs == 1
        assert cdf.n_samples == 1  # subscription 100's us-east/us-west pair
        assert scope.delta["counters"]["correlation.constant_pairs"] == 1.0

    def test_result_is_correlation_cdf(self, correlated_store):
        cdf = corr.node_level_correlation(correlated_store, Cloud.PRIVATE)
        assert isinstance(cdf, corr.CorrelationCdf)
        # Still a fully functional EmpiricalCdf.
        assert 0.0 <= cdf.evaluate(1.0) <= 1.0


class TestBlockedNodeCorrelationBitCompat:
    """The hoisted-standardization kernel must match the scalar reference."""

    @staticmethod
    def assert_cdfs_identical(a, b):
        assert np.array_equal(a.values, b.values, equal_nan=True)
        assert np.array_equal(a.probabilities, b.probabilities)
        assert a.n_samples == b.n_samples
        assert a.n_constant_pairs == b.n_constant_pairs

    def test_matches_reference(self, correlated_store):
        self.assert_cdfs_identical(
            corr.node_level_correlation(correlated_store, Cloud.PRIVATE),
            corr._node_level_correlation_reference(correlated_store, Cloud.PRIVATE),
        )

    def test_matches_reference_with_constant_vm(self, correlated_store):
        n = correlated_store.metadata.n_samples
        correlated_store.add_vm(
            make_vm(9, node_id=0, subscription_id=100, region="us-east")
        )
        correlated_store.add_utilization(9, np.full(n, 0.25))
        self.assert_cdfs_identical(
            corr.node_level_correlation(correlated_store, Cloud.PRIVATE),
            corr._node_level_correlation_reference(correlated_store, Cloud.PRIVATE),
        )

    def test_matches_reference_on_generated_trace(self, small_trace):
        for cloud in (Cloud.PRIVATE, Cloud.PUBLIC):
            self.assert_cdfs_identical(
                corr.node_level_correlation(small_trace, cloud, max_nodes=40),
                corr._node_level_correlation_reference(
                    small_trace, cloud, max_nodes=40
                ),
            )


class TestRegionLevel:
    def test_us_pair_correlated(self, correlated_store):
        cdf = corr.region_level_correlation(correlated_store, Cloud.PRIVATE)
        # Only the us-east/us-west pair qualifies (europe filtered out).
        assert cdf.n_samples == 1
        assert cdf.median > 0.9

    def test_country_filter_off_includes_europe(self, correlated_store):
        cdf = corr.region_level_correlation(
            correlated_store, Cloud.PRIVATE, countries=()
        )
        assert cdf.n_samples == 3  # all pairs of 3 regions

    def test_no_multi_region_raises(self):
        store = TraceStore()
        store.add_subscription(
            SubscriptionInfo(subscription_id=1, cloud=Cloud.PRIVATE, service="s")
        )
        with pytest.raises(ValueError):
            corr.region_level_correlation(store, Cloud.PRIVATE)


class TestRegionAgnostic:
    def test_detection(self, correlated_store):
        reports = corr.region_agnostic_subscriptions(
            correlated_store, Cloud.PRIVATE, countries=("US",)
        )
        assert len(reports) == 1
        assert reports[0].region_agnostic
        assert reports[0].regions == ("us-east", "us-west")

    def test_anticorrelated_region_breaks_agnosticism(self, correlated_store):
        reports = corr.region_agnostic_subscriptions(
            correlated_store, Cloud.PRIVATE, countries=()
        )
        assert len(reports) == 1
        assert not reports[0].region_agnostic  # europe is anti-correlated

    def test_private_cloud_has_candidates(self, medium_trace):
        reports = corr.region_agnostic_subscriptions(medium_trace, Cloud.PRIVATE)
        assert reports
        agnostic_share = np.mean([r.region_agnostic for r in reports])
        assert agnostic_share > 0.5


class TestServiceRegionSeries:
    def test_daily_folding(self, medium_trace):
        series = corr.service_region_series(
            medium_trace, "web-application", cloud=Cloud.PRIVATE
        )
        assert len(series) >= 2
        for s in series.values():
            assert s.shape == (288,)

    def test_peak_alignment(self):
        sample_period = 300.0
        day = np.zeros(288)
        day[150:160] = 1.0
        shifted = np.roll(day, 36)  # 3 hours
        gap = corr.peak_alignment_hours({"a": day, "b": shifted}, sample_period)
        assert gap == pytest.approx(3.0, abs=0.2)

    def test_alignment_circular(self):
        day = np.zeros(288)
        day[2] = 1.0
        other = np.zeros(288)
        other[286] = 1.0  # 23:50 vs 00:10 -> 20 minutes apart circularly
        gap = corr.peak_alignment_hours({"a": day, "b": other}, 300.0)
        assert gap < 0.5

    def test_alignment_needs_two_regions(self):
        with pytest.raises(ValueError):
            corr.peak_alignment_hours({"a": np.ones(288)}, 300.0)
