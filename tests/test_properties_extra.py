"""Extra property-based tests on management and periodicity invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.periodicity import detect_periods
from repro.management.scheduling import DeferrableJob, ValleyScheduler


class TestPeriodicityProperties:
    @given(st.integers(16, 200), st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_detects_planted_period(self, period, seed):
        """A clean sine of any period in range is found within tolerance."""
        n = 2016
        rng = np.random.default_rng(seed)
        t = np.arange(n)
        x = np.sin(2 * np.pi * t / period) + 0.05 * rng.normal(size=n)
        periods = detect_periods(x, rng=rng)
        assert periods, f"no period found for planted {period}"
        best = min(periods, key=lambda p: abs(p.period_samples - period))
        assert abs(best.period_samples - period) <= max(2, 0.1 * period)

    @given(st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_no_false_positives_on_noise(self, seed):
        rng = np.random.default_rng(seed)
        periods = detect_periods(rng.normal(size=1024), rng=rng)
        # White noise may rarely produce a spurious weak hit; never a strong one.
        assert all(p.acf_value < 0.4 for p in periods)


class TestSchedulerProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.5, max_value=20.0),  # cores
                st.integers(1, 8),                         # duration
                st.integers(1, 48),                        # deadline
            ),
            min_size=0,
            max_size=30,
        ),
        st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_capacity_and_deadlines_always_respected(self, raw_jobs, seed):
        rng = np.random.default_rng(seed)
        profile = rng.uniform(0, 60, size=48)
        scheduler = ValleyScheduler(profile, capacity_cores=80.0)
        jobs = [
            DeferrableJob(i, cores=c, duration_hours=d, deadline_hour=dl)
            for i, (c, d, dl) in enumerate(raw_jobs)
        ]
        outcome = scheduler.schedule(jobs)
        assert np.all(outcome.profile_after <= 80.0 + 1e-9)
        for placed in outcome.scheduled:
            end = placed.start_hour + placed.job.duration_hours
            assert end <= placed.job.deadline_hour
            assert end <= 48
        # Conservation: every job is either scheduled or rejected, once.
        assert len(outcome.scheduled) + len(outcome.rejected) == len(jobs)

    @given(st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_added_load_matches_scheduled_jobs(self, seed):
        rng = np.random.default_rng(seed)
        profile = rng.uniform(0, 40, size=24)
        scheduler = ValleyScheduler(profile, capacity_cores=100.0)
        jobs = [
            DeferrableJob(i, cores=float(rng.integers(1, 10)),
                          duration_hours=int(rng.integers(1, 5)),
                          deadline_hour=int(rng.integers(5, 25)))
            for i in range(10)
        ]
        outcome = scheduler.schedule(jobs)
        added = float(outcome.profile_after.sum() - outcome.profile_before.sum())
        expected = sum(s.job.cores * s.job.duration_hours for s in outcome.scheduled)
        assert added == pytest.approx(expected)
