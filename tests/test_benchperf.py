"""Tests for the bench-perf harness: comparison logic and determinism."""

from __future__ import annotations

import copy

import pytest

from repro.experiments.benchperf import (
    SCHEMA_VERSION,
    compare_to_baseline,
    load_artifact,
    render_comparison,
    run_bench_perf,
)


def artifact(**overrides) -> dict:
    """A minimal, internally consistent bench-perf artifact."""
    payload = {
        "bench": "perf",
        "schema_version": SCHEMA_VERSION,
        "seed": 7,
        "scale": 0.12,
        "repeats": 3,
        "calibration_s": 0.5,
        "tasks": [
            {"id": "fig1a", "status": "ok", "median_s": 1.0, "samples_s": [1.0]},
            {"id": "fig7a", "status": "ok", "median_s": 4.0, "samples_s": [4.0]},
            {"id": "tiny", "status": "ok", "median_s": 0.01, "samples_s": [0.01]},
        ],
        "total_s": 5.01,
        "kernels": [],
    }
    payload.update(overrides)
    return payload


def with_task_times(base: dict, times: dict[str, float]) -> dict:
    candidate = copy.deepcopy(base)
    for task in candidate["tasks"]:
        if task["id"] in times:
            task["median_s"] = times[task["id"]]
    candidate["total_s"] = round(sum(t["median_s"] for t in candidate["tasks"]), 6)
    return candidate


class TestCompareToBaseline:
    def test_identical_artifacts_pass(self):
        result = compare_to_baseline(artifact(), artifact())
        assert result["ok"]
        assert result["failures"] == []
        assert result["machine_factor"] == 1.0
        assert "perf gate: ok" in render_comparison(result)

    def test_within_tolerance_passes(self):
        candidate = with_task_times(artifact(), {"fig1a": 1.15})  # +15% < 20%
        assert compare_to_baseline(candidate, artifact())["ok"]

    def test_per_task_regression_fails(self):
        candidate = with_task_times(artifact(), {"fig7a": 5.0})  # +25%
        result = compare_to_baseline(candidate, artifact())
        assert not result["ok"]
        assert any("fig7a" in f for f in result["failures"])
        assert "REGRESSED" in render_comparison(result)

    def test_total_regression_fails_even_when_tasks_pass(self):
        # Every task up 12%: under the 20% per-task bar, over the 10% total.
        candidate = with_task_times(
            artifact(), {"fig1a": 1.12, "fig7a": 4.48, "tiny": 0.0112}
        )
        result = compare_to_baseline(candidate, artifact())
        assert not result["ok"]
        assert any("registry total" in f for f in result["failures"])

    def test_calibration_normalizes_slower_machine(self):
        # 2x slower machine, 2x slower tasks: no relative regression.
        candidate = with_task_times(
            artifact(calibration_s=1.0), {"fig1a": 2.0, "fig7a": 8.0, "tiny": 0.02}
        )
        result = compare_to_baseline(candidate, artifact())
        assert result["ok"]
        assert result["machine_factor"] == 2.0

    def test_noise_floor_skips_tiny_tasks(self):
        # 3x regression on a 10ms task is timer noise, not a perf bug.
        candidate = with_task_times(artifact(), {"tiny": 0.03})
        result = compare_to_baseline(candidate, artifact())
        assert result["ok"]
        (tiny_row,) = [r for r in result["per_task"] if r["id"] == "tiny"]
        assert not tiny_row["gated"]

    def test_noise_floor_is_configurable(self):
        candidate = with_task_times(artifact(), {"tiny": 0.03})
        result = compare_to_baseline(candidate, artifact(), min_task_s=0.001)
        assert not result["ok"]

    def test_schema_version_mismatch_fails(self):
        result = compare_to_baseline(
            artifact(schema_version=SCHEMA_VERSION + 1), artifact()
        )
        assert not result["ok"]
        assert any("schema_version" in f for f in result["failures"])

    def test_seed_and_scale_mismatch_fails(self):
        assert not compare_to_baseline(artifact(seed=8), artifact())["ok"]
        assert not compare_to_baseline(artifact(scale=0.3), artifact())["ok"]

    def test_task_list_mismatch_fails(self):
        candidate = artifact()
        candidate["tasks"] = candidate["tasks"][:-1]
        candidate["total_s"] = 5.0
        result = compare_to_baseline(candidate, artifact())
        assert not result["ok"]
        assert any("task list" in f for f in result["failures"])

    def test_non_ok_status_fails(self):
        candidate = artifact()
        candidate["tasks"][0]["status"] = "failed"
        result = compare_to_baseline(candidate, artifact())
        assert not result["ok"]
        assert any("status" in f for f in result["failures"])

    def test_missing_calibration_fails(self):
        result = compare_to_baseline(artifact(calibration_s=0.0), artifact())
        assert not result["ok"]
        assert any("calibration" in f for f in result["failures"])


class TestRunBenchPerf:
    def test_rejects_zero_repeats(self, tmp_path):
        with pytest.raises(ValueError):
            run_bench_perf(repeats=0, cache_dir=tmp_path)

    def test_two_runs_agree_on_tasks_and_schema(self, tmp_path):
        """Determinism: re-running yields the same task list and artifact shape.

        Wall-times legitimately differ between runs; everything else --
        task identities, ordering, statuses, schema fields -- must not.
        One cheap task and repeats=1 keep this a smoke-scale run.
        """
        kwargs = dict(
            seed=7, scale=0.12, repeats=1, cache_dir=tmp_path, task_ids=["fig1a"]
        )
        first = run_bench_perf(**kwargs)
        second = run_bench_perf(**kwargs)
        for payload in (first, second):
            assert payload["bench"] == "perf"
            assert payload["schema_version"] == SCHEMA_VERSION
            assert set(payload) == {
                "bench", "schema_version", "seed", "scale", "repeats",
                "machine", "calibration_s", "tasks", "total_s", "kernels",
            }
            assert [k["name"] for k in payload["kernels"]] == [
                "detect_periods", "pairwise_pearson",
            ]
            assert all(k["outputs_identical"] for k in payload["kernels"])
        assert [t["id"] for t in first["tasks"]] == ["fig1a"]
        assert [t["id"] for t in first["tasks"]] == [t["id"] for t in second["tasks"]]
        assert [t["status"] for t in first["tasks"]] == [
            t["status"] for t in second["tasks"]
        ]
        # And the comparison machinery accepts a self-comparison end-to-end.
        assert compare_to_baseline(second, first)["ok"]


class TestLoadArtifact:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_perf.json"
        import json

        path.write_text(json.dumps(artifact()))
        assert load_artifact(path)["total_s"] == 5.01

    def test_rejects_other_artifacts(self, tmp_path):
        path = tmp_path / "BENCH_scale.json"
        path.write_text('{"bench": "scale"}')
        with pytest.raises(ValueError):
            load_artifact(path)
