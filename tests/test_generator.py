"""Integration tests for the trace generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.telemetry.schema import Cloud, EventKind, UTILIZATION_PATTERNS
from repro.workloads.generator import GeneratorConfig, TraceGenerator, generate_trace_pair
from repro.workloads.profiles import private_profile, public_profile


def test_determinism():
    config = GeneratorConfig(seed=123, scale=0.05)
    a = TraceGenerator(private_profile(), config).generate()
    b = TraceGenerator(private_profile(), config).generate()
    assert len(a) == len(b)
    vms_a = {vm.vm_id: (vm.created_at, vm.ended_at, vm.node_id) for vm in a.vms()}
    vms_b = {vm.vm_id: (vm.created_at, vm.ended_at, vm.node_id) for vm in b.vms()}
    assert vms_a == vms_b
    for vm_id in a.vm_ids_with_utilization()[:20]:
        np.testing.assert_array_equal(a.utilization(vm_id), b.utilization(vm_id))


def test_different_seeds_differ():
    a = TraceGenerator(private_profile(), GeneratorConfig(seed=1, scale=0.05)).generate()
    b = TraceGenerator(private_profile(), GeneratorConfig(seed=2, scale=0.05)).generate()
    assert {vm.created_at for vm in a.vms()} != {vm.created_at for vm in b.vms()}


def test_merged_trace_has_disjoint_ids(small_trace):
    private_ids = {vm.vm_id for vm in small_trace.vms(cloud=Cloud.PRIVATE)}
    public_ids = {vm.vm_id for vm in small_trace.vms(cloud=Cloud.PUBLIC)}
    assert not (private_ids & public_ids)
    assert private_ids and public_ids


def test_vm_records_consistent(small_trace):
    duration = small_trace.metadata.duration
    for vm in small_trace.vms():
        assert vm.created_at < duration
        assert vm.ended_at > vm.created_at
        assert vm.cores > 0 and vm.memory_gb > 0
        assert vm.pattern in UTILIZATION_PATTERNS
        assert vm.node_id in small_trace.nodes
        assert vm.cluster_id in small_trace.clusters
        assert vm.region in small_trace.regions
        assert vm.subscription_id in small_trace.subscriptions


def test_events_reference_known_vms(small_trace):
    for event in small_trace.events():
        if event.kind is EventKind.ALLOCATION_FAILURE:
            continue
        assert event.vm_id in small_trace
        vm = small_trace.vm(event.vm_id)
        if event.kind is EventKind.CREATE:
            assert event.time == pytest.approx(vm.created_at)
        if event.kind is EventKind.TERMINATE:
            assert event.time == pytest.approx(vm.ended_at)


def test_create_events_only_inside_window(small_trace):
    for event in small_trace.events(kind=EventKind.CREATE):
        assert 0 <= event.time < small_trace.metadata.duration


def test_utilization_masked_to_lifetime(small_trace):
    period = small_trace.metadata.sample_period
    checked = 0
    for vm_id in small_trace.vm_ids_with_utilization():
        vm = small_trace.vm(vm_id)
        if not vm.completed or vm.created_at < 0:
            continue
        series = small_trace.utilization(vm_id)
        # Samples comfortably before creation are zero.
        pre = int(vm.created_at / period) - 2
        if pre > 0:
            assert series[pre] == 0.0
        post = int(vm.ended_at / period) + 2
        if post < series.size:
            assert series[post] == 0.0
        checked += 1
        if checked >= 25:
            break
    assert checked > 0


def test_telemetry_only_for_long_lived(small_trace):
    min_overlap = private_profile().telemetry_min_overlap
    duration = small_trace.metadata.duration
    for vm_id in small_trace.vm_ids_with_utilization()[:200]:
        vm = small_trace.vm(vm_id)
        overlap = min(vm.ended_at, duration) - max(vm.created_at, 0.0)
        assert overlap >= min_overlap


def test_workers_bit_identical_to_sequential():
    """``generate_trace_pair(workers=2)`` must equal the sequential result.

    The private and public clouds draw from independent seeded RNG streams,
    so process-parallel generation cannot change a single bit of output.
    """
    config = GeneratorConfig(seed=5, scale=0.04)
    seq = generate_trace_pair(config, workers=1)
    par = generate_trace_pair(config, workers=2)
    assert [vm.vm_id for vm in seq.vms()] == [vm.vm_id for vm in par.vms()]
    assert {vm.vm_id: (vm.created_at, vm.ended_at, vm.node_id) for vm in seq.vms()} == {
        vm.vm_id: (vm.created_at, vm.ended_at, vm.node_id) for vm in par.vms()
    }
    assert [(e.time, e.kind, e.vm_id) for e in seq.events()] == [
        (e.time, e.kind, e.vm_id) for e in par.events()
    ]
    ids = seq.vm_ids_with_utilization()
    assert ids == par.vm_ids_with_utilization()
    for vm_id in ids:
        np.testing.assert_array_equal(seq.utilization(vm_id), par.utilization(vm_id))


def test_batch_and_loop_synthesis_agree_statistically():
    """The vectorized fast path must preserve the loop path's statistics.

    Bit-level equality is not expected (different draw order and noise law),
    but per-pattern utilization means/stds feed every downstream analysis
    and must match closely.
    """
    base = GeneratorConfig(seed=9, scale=0.05)
    fast = TraceGenerator(private_profile(), base).generate()
    slow = TraceGenerator(
        private_profile(),
        GeneratorConfig(seed=9, scale=0.05, telemetry_batch=False),
    ).generate()
    ids = fast.vm_ids_with_utilization()
    assert ids == slow.vm_ids_with_utilization()
    a = fast.utilization_matrix(ids)
    b = slow.utilization_matrix(ids)
    assert abs(float(a.mean()) - float(b.mean())) < 0.02
    assert abs(float(a.std()) - float(b.std())) < 0.02


def test_no_utilization_option():
    config = GeneratorConfig(seed=5, scale=0.05, synthesize_utilization=False)
    trace = TraceGenerator(public_profile(), config).generate()
    assert trace.vm_ids_with_utilization() == []
    assert len(trace) > 0


def test_scaled_profile_counts():
    profile = public_profile()
    scaled = profile.scaled(0.5)
    assert scaled.n_subscriptions == profile.n_subscriptions // 2
    assert scaled.churn.base_rate_per_hour == pytest.approx(
        profile.churn.base_rate_per_hour * 0.5
    )
    with pytest.raises(ValueError):
        profile.scaled(0.0)


def test_node_capacity_respected(small_trace):
    """At any sampled instant, allocated cores never exceed node capacity."""
    for check_time in (0.0, small_trace.metadata.duration / 2):
        used: dict[int, float] = {}
        for vm in small_trace.vms():
            if vm.created_at <= check_time < vm.ended_at:
                used[vm.node_id] = used.get(vm.node_id, 0.0) + vm.cores
        for node_id, cores in used.items():
            capacity = small_trace.nodes[node_id].capacity_cores
            assert cores <= capacity + 1e-9


def test_private_cloud_has_bursts(small_trace):
    """Some private deployments arrive as large simultaneous batches."""
    from collections import Counter

    creates = small_trace.events(kind=EventKind.CREATE, cloud=Cloud.PRIVATE)
    per_instant = Counter(e.time for e in creates)
    assert max(per_instant.values()) >= 10


def test_public_cloud_autoscaled_subscriptions_cycle(small_trace):
    """Autoscaled fleets create AND terminate VMs across the week."""
    events = small_trace.events(cloud=Cloud.PUBLIC)
    creates = sum(1 for e in events if e.kind is EventKind.CREATE)
    terminates = sum(1 for e in events if e.kind is EventKind.TERMINATE)
    assert creates > 100
    assert terminates > 100
