"""Unit tests for the service taxonomy and spatial models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.telemetry.schema import (
    PATTERN_DIURNAL,
    PATTERN_HOURLY_PEAK,
    PATTERN_STABLE,
)
from repro.workloads.services import (
    PRIVATE_SERVICES,
    PUBLIC_SERVICES,
    expected_pattern_mix,
    sample_service,
)
from repro.workloads.spatial import (
    DEFAULT_REGION_POPULARITY,
    RegionSpread,
    choose_regions,
)


class TestServiceCatalogs:
    def test_shares_sum_to_one(self):
        for catalog in (PRIVATE_SERVICES, PUBLIC_SERVICES):
            assert sum(w for _a, w in catalog) == pytest.approx(1.0)

    def test_pattern_weights_positive(self):
        for catalog in (PRIVATE_SERVICES, PUBLIC_SERVICES):
            for archetype, _w in catalog:
                assert all(v >= 0 for v in archetype.pattern_weights.values())
                assert sum(archetype.pattern_weights.values()) == pytest.approx(1.0)

    def test_expected_mix_encodes_paper_findings(self):
        """The catalog-implied mixes encode Fig. 5(d)'s directions."""
        private = expected_pattern_mix(PRIVATE_SERVICES)
        public = expected_pattern_mix(PUBLIC_SERVICES)
        # Diurnal dominant in both.
        assert max(private, key=private.get) == PATTERN_DIURNAL
        assert max(public, key=public.get) == PATTERN_DIURNAL
        # Private roughly double public diurnal share.
        assert private[PATTERN_DIURNAL] / public[PATTERN_DIURNAL] > 1.4
        # Stable higher in public.
        assert public[PATTERN_STABLE] > private[PATTERN_STABLE]
        # Hourly-peak concentrated in private.
        assert private.get(PATTERN_HOURLY_PEAK, 0) > public.get(PATTERN_HOURLY_PEAK, 0)

    def test_sample_pattern_respects_weights(self, rng):
        web = PRIVATE_SERVICES[0][0]
        draws = [web.sample_pattern(rng) for _ in range(300)]
        assert draws.count(PATTERN_DIURNAL) > 250

    def test_sample_service_weighted(self, rng):
        draws = [sample_service(PRIVATE_SERVICES, rng).name for _ in range(400)]
        assert draws.count("web-application") > 150

    def test_private_services_region_agnostic_majority(self):
        agnostic_share = sum(
            w for a, w in PRIVATE_SERVICES if a.region_agnostic
        )
        assert agnostic_share > 0.5
        public_agnostic = sum(w for a, w in PUBLIC_SERVICES if a.region_agnostic)
        assert public_agnostic < 0.3


class TestRegionSpread:
    def test_probabilities_sum_to_one(self):
        spread = RegionSpread(0.6, 0.5, 8)
        assert spread.probabilities().sum() == pytest.approx(1.0)
        assert spread.probabilities()[0] == pytest.approx(0.6)

    def test_single_region_only(self):
        spread = RegionSpread(1.0, 0.5, 1)
        assert spread.probabilities().tolist() == [1.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            RegionSpread(0.0, 0.5, 3)
        with pytest.raises(ValueError):
            RegionSpread(0.5, 1.5, 3)
        with pytest.raises(ValueError):
            RegionSpread(0.5, 0.5, 0)

    def test_sample_in_range(self, rng):
        spread = RegionSpread(0.6, 0.5, 5)
        draws = [spread.sample_region_count(rng) for _ in range(300)]
        assert all(1 <= d <= 5 for d in draws)
        assert 0.5 <= np.mean([d == 1 for d in draws]) <= 0.7

    def test_expected_region_count(self):
        spread = RegionSpread(0.5, 0.5, 2)
        # P(1)=0.5, P(2)=0.5 -> mean 1.5
        assert spread.expected_region_count() == pytest.approx(1.5)

    def test_heavier_tail_increases_mean(self):
        light = RegionSpread(0.8, 0.3, 10)
        heavy = RegionSpread(0.55, 0.7, 10)
        assert heavy.expected_region_count() > light.expected_region_count()


class TestChooseRegions:
    def test_distinct_regions(self, rng):
        regions = choose_regions(rng, ["a", "b", "c", "d"], 3)
        assert len(set(regions)) == 3

    def test_count_clamped_to_available(self, rng):
        regions = choose_regions(rng, ["a", "b"], 5)
        assert len(regions) == 2

    def test_popularity_bias(self, rng):
        popularity = {"hot": 50.0, "cold": 1.0}
        hits = sum(
            "hot" in choose_regions(rng, ["hot", "cold"], 1, popularity=popularity)
            for _ in range(200)
        )
        assert hits > 150

    def test_default_popularity_covers_default_regions(self):
        from repro.cloud.entities import DEFAULT_REGIONS

        for spec in DEFAULT_REGIONS:
            assert spec.name in DEFAULT_REGION_POPULARITY
