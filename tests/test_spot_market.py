"""Integration tests for the in-simulator spot market."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloud.entities import RegionSpec, TopologySpec, build_topology
from repro.cloud.platform import CloudPlatform, VMRequest
from repro.cloud.simulation import Simulator
from repro.cloud.sku import NodeSku, VMSku
from repro.cloud.spot_market import SpotMarket
from repro.telemetry.schema import Cloud, EventKind
from repro.telemetry.store import TraceStore
from repro.timebase import SECONDS_PER_HOUR


def make_platform(nodes=4, cores=16) -> CloudPlatform:
    spec = TopologySpec(
        cloud=Cloud.PUBLIC,
        regions=(RegionSpec("a", 0),),
        clusters_per_region=1,
        racks_per_cluster=1,
        nodes_per_rack=nodes,
        node_sku=NodeSku("t", cores, cores * 4),
    )
    return CloudPlatform(build_topology(spec), TraceStore(), rng=np.random.default_rng(0))


def spawn(platform, n, cores=4, sub=1):
    ids = []
    for _ in range(n):
        vm_id = platform.create_vm(
            VMRequest(
                subscription_id=sub, deployment_id=sub, service="s",
                region="a", sku=VMSku("x", cores, cores * 4),
            ),
            0.0,
        )
        assert vm_id is not None
        ids.append(vm_id)
    return ids


class TestSpotMarket:
    def test_registration(self):
        platform = make_platform()
        market = SpotMarket(platform)
        ids = spawn(platform, 2)
        market.register(ids[0])
        assert market.is_spot(ids[0])
        assert not market.is_spot(ids[1])
        market.deregister(ids[0])
        assert market.active_spot_count == 0

    def test_no_eviction_below_threshold(self):
        platform = make_platform(nodes=8)  # 128 cores capacity
        market = SpotMarket(platform, pressure_threshold=0.85)
        for vm_id in spawn(platform, 4):  # 16/128 cores
            market.register(vm_id)
        market.evaluate(0.0)
        assert market.evictions == 0
        assert market.active_spot_count == 4

    def test_eviction_when_hot(self):
        platform = make_platform(nodes=4, cores=16)  # 64 cores
        market = SpotMarket(platform, pressure_threshold=0.5)
        spot_ids = spawn(platform, 6, cores=4)  # 24 cores spot
        spawn(platform, 8, cores=4, sub=2)      # 32 cores on-demand -> 87.5%
        for vm_id in spot_ids:
            market.register(vm_id)
        market.evaluate(3600.0)
        assert market.evictions > 0
        evict_events = platform.store.events(kind=EventKind.EVICT)
        assert evict_events and all(e.detail == "spot reclaim" for e in evict_events)
        # Pressure restored to (at most slightly above) the threshold.
        assert market.region_pressure("a") <= 0.5 + 4 / 64 + 1e-9

    def test_largest_first_reclaim(self):
        platform = make_platform(nodes=4, cores=16)
        market = SpotMarket(platform, pressure_threshold=0.5)
        small = spawn(platform, 4, cores=2)          # 8 cores
        big = spawn(platform, 3, cores=8, sub=3)     # 24 cores -> total 50%
        spawn(platform, 2, cores=4, sub=2)           # +8 -> 62.5%
        for vm_id in small + big:
            market.register(vm_id)
        market.evaluate(0.0)
        evicted = {e.vm_id for e in platform.store.events(kind=EventKind.EVICT)}
        assert evicted <= set(big)  # biggest spot VMs go first

    def test_observations_logged(self):
        platform = make_platform(nodes=8)
        market = SpotMarket(platform)
        for vm_id in spawn(platform, 3):
            market.register(vm_id)
        market.evaluate(7 * SECONDS_PER_HOUR)
        assert len(market.observations) == 3
        obs = market.observations[0]
        assert obs.hour_of_day == pytest.approx(7.0)
        assert 0 <= obs.pressure <= 1
        pressures, cores, hours, evicted = market.training_arrays()
        assert pressures.shape == cores.shape == hours.shape == evicted.shape

    def test_training_arrays_empty_raises(self):
        market = SpotMarket(make_platform())
        with pytest.raises(ValueError):
            market.training_arrays()

    def test_self_terminated_members_cleaned_up(self):
        platform = make_platform(nodes=8)
        market = SpotMarket(platform)
        ids = spawn(platform, 2)
        for vm_id in ids:
            market.register(vm_id)
        platform.terminate_vm(ids[0], 100.0)
        market.evaluate(3600.0)
        assert market.active_spot_count == 1

    def test_periodic_install(self):
        platform = make_platform(nodes=8)
        market = SpotMarket(platform, evaluation_interval=SECONDS_PER_HOUR)
        for vm_id in spawn(platform, 2):
            market.register(vm_id)
        sim = Simulator()
        market.install(sim, start=0.0, until=5 * SECONDS_PER_HOUR)
        sim.run()
        assert len(market.observations) == 10  # 2 VMs x 5 evaluations

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            SpotMarket(make_platform(), pressure_threshold=0.0)


class TestEndToEndWithPredictor:
    def test_predictor_learns_from_market_history(self):
        """Close the loop: simulate -> observe -> train -> sane predictions."""
        from repro.management.spot import SpotEvictionPredictor

        platform = make_platform(nodes=4, cores=16)  # 64 cores
        market = SpotMarket(platform, pressure_threshold=0.6)
        sim = Simulator()

        # Churn of spot VMs under oscillating on-demand load.
        def spawn_spot(now: float) -> None:
            vm_id = platform.create_vm(
                VMRequest(
                    subscription_id=1, deployment_id=1, service="s",
                    region="a", sku=VMSku("x", 2, 8),
                ),
                now,
            )
            if vm_id is not None:
                market.register(vm_id)

        on_demand: list[int] = []

        def pulse_on_demand(now: float) -> None:
            # Alternate between adding and removing on-demand load.
            if int(now // (6 * SECONDS_PER_HOUR)) % 2 == 0:
                vm_id = platform.create_vm(
                    VMRequest(
                        subscription_id=2, deployment_id=2, service="od",
                        region="a", sku=VMSku("y", 8, 32),
                    ),
                    now,
                )
                if vm_id is not None:
                    on_demand.append(vm_id)
            elif on_demand:
                platform.terminate_vm(on_demand.pop(), now)

        horizon = 72 * SECONDS_PER_HOUR
        sim.schedule_periodic(0.0, 2 * SECONDS_PER_HOUR, spawn_spot, until=horizon)
        sim.schedule_periodic(0.0, SECONDS_PER_HOUR, pulse_on_demand, until=horizon)
        market.install(sim, start=0.0, until=horizon)
        sim.run(until=horizon)

        assert market.evictions > 0
        pressures, cores, hours, evicted = market.training_arrays()
        assert evicted.sum() > 0
        predictor = SpotEvictionPredictor().fit(pressures, cores, hours, evicted)
        assert predictor.predict_risk(0.95, 2, 12) > predictor.predict_risk(0.2, 2, 12)
