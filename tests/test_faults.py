"""Unit tests for failure injection and lifetime-aware migration."""

from __future__ import annotations

import numpy as np

from repro.cloud.entities import RegionSpec, TopologySpec, build_topology
from repro.cloud.faults import FailureInjector, plan_migrations
from repro.cloud.platform import CloudPlatform, VMRequest
from repro.cloud.sku import NodeSku, VMSku
from repro.telemetry.schema import Cloud, EventKind
from repro.telemetry.store import TraceStore


def make_platform(nodes_per_rack=2, racks=2) -> CloudPlatform:
    spec = TopologySpec(
        cloud=Cloud.PRIVATE,
        regions=(RegionSpec("a", 0),),
        clusters_per_region=1,
        racks_per_cluster=racks,
        nodes_per_rack=nodes_per_rack,
        node_sku=NodeSku("t", 16, 64),
    )
    return CloudPlatform(build_topology(spec), TraceStore(), rng=np.random.default_rng(0))


def fill_node(platform, n_vms=3, deployment_id=1):
    vm_ids = []
    for _ in range(n_vms):
        vm_id = platform.create_vm(
            VMRequest(
                subscription_id=1,
                deployment_id=deployment_id,
                service="svc",
                region="a",
                sku=VMSku("D2", 2, 8),
            ),
            0.0,
        )
        vm_ids.append(vm_id)
    return vm_ids


def test_fail_node_migrates_vms():
    platform = make_platform()
    vm_ids = fill_node(platform, n_vms=4)
    injector = FailureInjector(platform)
    victim_node = platform.store.vm(vm_ids[0]).node_id
    victims_before = [
        v for v in vm_ids if platform.store.vm(v).node_id == victim_node
    ]
    outcome = injector.fail_node(victim_node, 1000.0)

    assert set(outcome) == set(victims_before)
    assert injector.migrations == len(victims_before)
    assert injector.lost_vms == 0
    for vm_id, new_node in outcome.items():
        assert new_node is not None and new_node != victim_node
        # Store placement updated to the new node.
        assert platform.store.vm(vm_id).node_id == new_node
    migrate_events = platform.store.events(kind=EventKind.MIGRATE)
    assert len(migrate_events) == len(victims_before)


def test_fail_node_without_capacity_loses_vms():
    platform = make_platform(nodes_per_rack=1, racks=1)  # single node!
    vm_ids = fill_node(platform, n_vms=2)
    injector = FailureInjector(platform)
    node_id = platform.store.vm(vm_ids[0]).node_id
    outcome = injector.fail_node(node_id, 500.0)
    assert all(v is None for v in outcome.values())
    assert injector.lost_vms == 2
    evictions = platform.store.events(kind=EventKind.EVICT)
    assert len(evictions) == 2
    # Lost VMs are finalized at the failure time.
    for vm_id in outcome:
        assert platform.store.vm(vm_id).ended_at == 500.0


def test_recover_node_restores_rotation():
    platform = make_platform()
    vm_ids = fill_node(platform)
    injector = FailureInjector(platform)
    node_id = platform.store.vm(vm_ids[0]).node_id
    injector.fail_node(node_id, 100.0)
    assert platform.allocator.is_down(node_id)
    injector.recover_node(node_id)
    assert not platform.allocator.is_down(node_id)


def test_plan_migrations_lifetime_aware():
    platform = make_platform()
    vm_ids = fill_node(platform, n_vms=3)
    node_id = platform.store.vm(vm_ids[0]).node_id
    same_node = [v for v in vm_ids if platform.store.vm(v).node_id == node_id]
    assert same_node, "expected at least one VM on the chosen node"
    remaining = {vm_id: 10 * 3600.0 for vm_id in same_node}
    remaining[same_node[0]] = 600.0  # about to finish: leave it
    plan = plan_migrations(
        platform, node_id, now=0.0, remaining_time_of=remaining
    )
    assert same_node[0] in plan.leave
    assert set(plan.migrate) == set(same_node[1:])


def test_plan_migrations_unknown_vms_treated_as_long():
    platform = make_platform()
    vm_ids = fill_node(platform, n_vms=2)
    node_id = platform.store.vm(vm_ids[0]).node_id
    plan = plan_migrations(platform, node_id, now=0.0, remaining_time_of={})
    assert plan.leave == ()
