"""Unit/integration tests for the spot-VM subsystem."""

from __future__ import annotations

import numpy as np
import pytest

from repro.management.spot import (
    SpotAdoptionAdvisor,
    SpotEvictionModel,
    SpotEvictionPredictor,
)
from repro.telemetry.store import TraceStore


class TestEvictionModel:
    def test_no_eviction_below_knee(self):
        model = SpotEvictionModel(knee=0.75)
        assert model.hourly_eviction_probability(0.5) == 0.0
        assert model.hourly_eviction_probability(0.75) == 0.0

    def test_rises_to_max(self):
        model = SpotEvictionModel(knee=0.5, max_rate=0.4)
        assert model.hourly_eviction_probability(1.0) == pytest.approx(0.4)
        assert 0 < model.hourly_eviction_probability(0.8) < 0.4

    def test_monotone(self):
        model = SpotEvictionModel()
        pressures = np.linspace(0, 1, 50)
        probs = [model.hourly_eviction_probability(p) for p in pressures]
        assert all(a <= b + 1e-12 for a, b in zip(probs, probs[1:], strict=False))

    def test_pressure_clipped(self):
        model = SpotEvictionModel()
        assert model.hourly_eviction_probability(2.0) == model.hourly_eviction_probability(1.0)

    def test_survival(self):
        model = SpotEvictionModel(knee=0.5, max_rate=0.5)
        surv = model.survival_probability(np.array([1.0, 1.0]))
        assert surv == pytest.approx(0.25)
        assert model.survival_probability(np.array([0.1, 0.2])) == 1.0

    def test_invalid_knee(self):
        with pytest.raises(ValueError):
            SpotEvictionModel(knee=1.5)


class TestEvictionPredictor:
    def test_learns_pressure_relationship(self, rng):
        model = SpotEvictionModel(knee=0.6, max_rate=0.5)
        n = 8000
        pressures = rng.uniform(0.2, 1.0, n)
        cores = rng.choice([1.0, 4.0], n)
        hours = rng.uniform(0, 24, n)
        evicted = np.array(
            [float(rng.random() < model.hourly_eviction_probability(p)) for p in pressures]
        )
        predictor = SpotEvictionPredictor().fit(pressures, cores, hours, evicted)
        assert predictor.predict_risk(0.98, 4, 12) > predictor.predict_risk(0.4, 4, 12)


class TestAdoptionAdvisor:
    def test_what_if_on_generated_trace(self, small_trace):
        advisor = SpotAdoptionAdvisor(small_trace)
        report = advisor.analyze()
        assert report.n_total_completed > 0
        assert 0 < report.n_candidates <= report.n_total_completed
        assert 0 < report.candidate_core_hours <= report.total_core_hours
        assert 0 < report.cost_saving_fraction < 1
        assert report.expected_evictions >= 0
        assert 0 <= report.valley_start_fraction <= 1

    def test_candidate_fraction_matches_short_lived_public(self, small_trace):
        advisor = SpotAdoptionAdvisor(small_trace)
        report = advisor.analyze()
        # The paper's motivation: most completed public VMs are candidates.
        assert report.candidate_fraction > 0.5

    def test_discount_scales_savings(self, small_trace):
        low = SpotAdoptionAdvisor(small_trace, spot_discount=0.3).analyze()
        high = SpotAdoptionAdvisor(small_trace, spot_discount=0.9).analyze()
        assert high.cost_saving_fraction == pytest.approx(
            3 * low.cost_saving_fraction
        )

    def test_invalid_discount(self, small_trace):
        with pytest.raises(ValueError):
            SpotAdoptionAdvisor(small_trace, spot_discount=1.5)

    def test_empty_store_raises(self):
        with pytest.raises(ValueError):
            SpotAdoptionAdvisor(TraceStore()).analyze()

    def test_max_candidate_lifetime_filters(self, small_trace):
        strict = SpotAdoptionAdvisor(small_trace, max_candidate_lifetime=600.0).analyze()
        loose = SpotAdoptionAdvisor(small_trace, max_candidate_lifetime=86400.0).analyze()
        assert strict.n_candidates < loose.n_candidates
