"""Online-vs-batch equivalence for the serving layer.

The load-bearing invariant of ``repro.serving``: after ingesting any prefix
of a trace's event stream, ``KnowledgeBaseService.snapshot_json()`` must be
byte-identical to serializing a ``WorkloadKnowledgeBase`` built from scratch
over a ``TraceStore`` truncated to the same prefix.  Both paths funnel
through the same record builders, so any drift here means the online
bookkeeping diverged from what the batch path scans.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.knowledge_base import WorkloadKnowledgeBase
from repro.serving import KnowledgeBaseService, iter_ingest_records, truncated_store
from repro.telemetry.schema import (
    Cloud,
    EventKind,
    EventRecord,
    NodeInfo,
    RegionInfo,
    SubscriptionInfo,
)
from repro.telemetry.store import TraceStore
from tests.test_store import make_vm

pytestmark = pytest.mark.serving


def _online_snapshot(store: TraceStore, records: list, n: int) -> str:
    service = KnowledgeBaseService.for_trace(store)
    service.apply_records(records[:n])
    return service.snapshot_json()


def _batch_snapshot(store: TraceStore, n: int) -> str:
    return WorkloadKnowledgeBase.from_trace(truncated_store(store, n)).to_json()


@pytest.fixture(scope="module")
def trace_records(small_trace):
    return list(iter_ingest_records(small_trace))


class TestGeneratedTrace:
    """Acceptance criterion: prefixes {25%, 50%, 100%} are bit-identical."""

    @pytest.mark.parametrize("frac", [0.25, 0.50, 1.00])
    def test_prefix_bit_identical(self, small_trace, trace_records, frac):
        n = int(len(trace_records) * frac)
        online = _online_snapshot(small_trace, trace_records, n)
        batch = _batch_snapshot(small_trace, n)
        assert online.encode() == batch.encode()

    def test_full_stream_matches_original_store(self, small_trace, trace_records):
        """Replaying everything reconstructs the KB of the source store."""
        online = _online_snapshot(small_trace, trace_records, len(trace_records))
        original = WorkloadKnowledgeBase.from_trace(small_trace).to_json()
        assert online == original

    @pytest.mark.slow
    def test_batch_split_invariance(self, small_trace, trace_records):
        """How the stream is chopped into batches must not matter, and
        interleaving refreshes between batches must not change the result."""
        expected = _batch_snapshot(small_trace, len(trace_records))
        for chunk in (1_000, len(trace_records) // 7 or 1):
            service = KnowledgeBaseService.for_trace(small_trace)
            for lo in range(0, len(trace_records), chunk):
                service.apply_records(trace_records[lo : lo + chunk])
                service.refresh()
            assert service.snapshot_json() == expected

    def test_snapshot_is_idempotent(self, small_trace, trace_records):
        service = KnowledgeBaseService.for_trace(small_trace)
        service.apply_records(trace_records[: len(trace_records) // 2])
        first = service.snapshot_json()
        assert service.snapshot_json() == first


def _edge_store() -> TraceStore:
    """Hand-built trace exercising degenerate telemetry.

    VM 1: constant series (zero variance -> correlation paths must not NaN).
    VM 2: NaN gap in the middle of the series.
    VM 3: all-NaN series and no lifecycle events (pure backfill VM).
    VM 4: no telemetry at all, evicted mid-window.
    """
    store = TraceStore()
    store.add_region(RegionInfo(name="us-east", tz_offset_hours=-5, country="US"))
    store.add_region(RegionInfo(name="us-west", tz_offset_hours=-8, country="US"))
    for node_id in (0, 1):
        store.add_node(
            NodeInfo(
                node_id=node_id,
                cluster_id=0,
                rack_id=0,
                region="us-east",
                cloud=Cloud.PRIVATE,
                capacity_cores=16,
                capacity_memory_gb=64,
            )
        )
    store.add_subscription(
        SubscriptionInfo(
            subscription_id=10,
            cloud=Cloud.PRIVATE,
            service="svc",
            regions=("us-east", "us-west"),
        )
    )
    store.add_subscription(
        SubscriptionInfo(subscription_id=11, cloud=Cloud.PRIVATE, service="other")
    )
    n = store.metadata.n_samples
    end = store.metadata.duration

    store.add_vm(make_vm(1, created_at=0.0, ended_at=end / 2))
    store.add_utilization(1, np.full(n, 0.25, dtype=np.float32))

    wave = np.clip(
        0.3 + 0.2 * np.sin(np.linspace(0.0, 12.0, n)), 0.0, 1.0
    ).astype(np.float32)
    wave[n // 3 : n // 3 + 7] = np.nan
    store.add_vm(make_vm(2, region="us-west", created_at=600.0))
    store.add_utilization(2, wave)

    store.add_vm(make_vm(3, subscription_id=11))
    store.add_utilization(3, np.full(n, np.nan, dtype=np.float32))

    store.add_vm(make_vm(4, subscription_id=11, created_at=300.0, ended_at=end / 4))

    store.add_event(
        EventRecord(time=0.0, kind=EventKind.CREATE, vm_id=1,
                    cloud=Cloud.PRIVATE, region="us-east")
    )
    store.add_event(
        EventRecord(time=300.0, kind=EventKind.CREATE, vm_id=4,
                    cloud=Cloud.PRIVATE, region="us-east")
    )
    store.add_event(
        EventRecord(time=600.0, kind=EventKind.CREATE, vm_id=2,
                    cloud=Cloud.PRIVATE, region="us-west")
    )
    store.add_event(
        EventRecord(time=end / 4, kind=EventKind.EVICT, vm_id=4,
                    cloud=Cloud.PRIVATE, region="us-east")
    )
    store.add_event(
        EventRecord(time=end / 2, kind=EventKind.TERMINATE, vm_id=1,
                    cloud=Cloud.PRIVATE, region="us-east")
    )
    return store


class TestEdgeTraces:
    def test_every_prefix_bit_identical(self):
        store = _edge_store()
        records = list(iter_ingest_records(store))
        # Small enough to check *every* prefix, not just the milestones.
        for n in range(len(records) + 1):
            online = _online_snapshot(store, records, n)
            batch = _batch_snapshot(store, n)
            assert online.encode() == batch.encode(), f"prefix {n} diverged"

    def test_backfill_vm_precedes_events(self):
        """VM 3 never has a CREATE event, so it must arrive as backfill
        before any lifecycle event in the replay order."""
        store = _edge_store()
        records = list(iter_ingest_records(store))
        backfill = [r for r in records if r.event is None]
        assert [r.vm.vm_id for r in backfill] == [3]
        first_event_idx = next(
            i for i, r in enumerate(records) if r.event is not None
        )
        assert all(
            i < first_event_idx for i, r in enumerate(records) if r.event is None
        )

    def test_censoring_round_trip(self):
        """Applying a CREATE censors the VM (its end is not yet known);
        the closing event restores the true end time via ``vm_end``."""
        from repro.serving import apply_record, copy_topology

        store = _edge_store()
        records = list(iter_ingest_records(store))
        create_1 = next(
            r for r in records
            if r.event is not None and r.event.kind is EventKind.CREATE
            and r.event.vm_id == 1
        )
        assert create_1.vm is not None
        terminate_1 = next(
            r for r in records
            if r.event is not None and r.event.kind is EventKind.TERMINATE
            and r.event.vm_id == 1
        )
        assert terminate_1.vm_end == store.vm(1).ended_at

        partial = TraceStore(metadata=store.metadata)
        copy_topology(store, partial)
        apply_record(partial, create_1)
        assert partial.vm(1).ended_at == float("inf")
        apply_record(partial, terminate_1)
        assert partial.vm(1).ended_at == store.vm(1).ended_at

    def test_truncated_store_prefix_counts(self):
        store = _edge_store()
        records = list(iter_ingest_records(store))
        partial = truncated_store(store, 2)
        assert len(partial) < len(store)
        full = truncated_store(store, len(records))
        assert len(full) == len(store)
        assert full.summary()["events"] == store.summary()["events"]


class TestWireRoundTrip:
    def test_to_wire_from_wire_preserves_snapshot(self, small_trace, trace_records):
        """Records that cross the TCP boundary (dict round trip) must apply
        identically to records that never left the process."""
        from repro.serving import IngestRecord

        n = len(trace_records) // 4
        wired = [
            IngestRecord.from_wire(r.to_wire()) for r in trace_records[:n]
        ]
        direct = _online_snapshot(small_trace, trace_records, n)
        via_wire = _online_snapshot(small_trace, wired, n)
        assert direct == via_wire
