"""Unit and property tests for time-series utilities."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.timeseries import (
    fold_daily,
    hourly_event_counts,
    hourly_occupancy,
    moving_average,
    percentile_bands,
)


class TestHourlyEventCounts:
    def test_basic_binning(self):
        times = np.array([0.0, 10.0, 3600.0, 7300.0])
        counts = hourly_event_counts(times, duration=3 * 3600)
        assert list(counts) == [2, 1, 1]

    def test_events_outside_window_ignored(self):
        times = np.array([-5.0, 100.0, 99999999.0])
        counts = hourly_event_counts(times, duration=3600)
        assert list(counts) == [1]

    def test_total_preserved(self):
        rng = np.random.default_rng(0)
        times = rng.uniform(0, 86400, 500)
        counts = hourly_event_counts(times, duration=86400)
        assert counts.sum() == 500
        assert counts.shape == (24,)

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            hourly_event_counts(np.array([1.0]), duration=0)

    @given(st.lists(st.floats(min_value=0, max_value=86399), min_size=0, max_size=200))
    @settings(max_examples=50)
    def test_conservation_property(self, times):
        counts = hourly_event_counts(np.array(times), duration=86400)
        assert counts.sum() == len(times)


class TestHourlyOccupancy:
    def test_single_interval(self):
        counts = hourly_occupancy(
            np.array([0.0]), np.array([2 * 3600.0]), duration=4 * 3600
        )
        assert list(counts) == [1, 1, 0, 0]

    def test_censored_interval_counts_forever(self):
        counts = hourly_occupancy(
            np.array([3600.0]), np.array([np.inf]), duration=3 * 3600
        )
        assert list(counts) == [0, 1, 1]

    def test_nan_end_treated_as_censored(self):
        counts = hourly_occupancy(
            np.array([0.0]), np.array([np.nan]), duration=2 * 3600
        )
        assert list(counts) == [1, 1]

    def test_interval_born_before_window(self):
        counts = hourly_occupancy(
            np.array([-100.0]), np.array([1800.0]), duration=2 * 3600
        )
        assert list(counts) == [1, 0]

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            hourly_occupancy(np.array([0.0]), np.array([1.0, 2.0]), duration=3600)


class TestMovingAverage:
    def test_window_one_is_identity(self):
        values = np.array([1.0, 5.0, 3.0])
        assert list(moving_average(values, 1)) == [1.0, 5.0, 3.0]

    def test_constant_preserved(self):
        assert np.allclose(moving_average(np.full(10, 2.0), 3), 2.0)

    def test_length_preserved(self):
        assert moving_average(np.arange(7, dtype=float), 3).shape == (7,)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            moving_average(np.ones(3), 0)


class TestPercentileBands:
    def test_known_percentiles(self):
        matrix = np.arange(100, dtype=float).reshape(100, 1)
        bands = percentile_bands(matrix, (50.0,))
        assert bands.band(50.0)[0] == pytest.approx(49.5)
        assert bands.n_series == 100

    def test_band_ordering(self, rng):
        matrix = rng.uniform(0, 1, size=(40, 24))
        bands = percentile_bands(matrix)
        assert np.all(bands.band(25.0) <= bands.band(50.0))
        assert np.all(bands.band(50.0) <= bands.band(75.0))
        assert np.all(bands.band(75.0) <= bands.band(95.0))

    def test_unknown_percentile_raises(self):
        bands = percentile_bands(np.ones((2, 3)), (50.0,))
        with pytest.raises(KeyError):
            bands.band(99.0)

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            percentile_bands(np.ones(5))

    def test_requires_nonempty(self):
        with pytest.raises(ValueError):
            percentile_bands(np.empty((0, 5)))


class TestFoldDaily:
    def test_fold_average(self):
        # Two days: day 1 all zeros, day 2 all twos -> folded = ones.
        series = np.concatenate([np.zeros(4), np.full(4, 2.0)])
        assert np.allclose(fold_daily(series, 4), 1.0)

    def test_partial_day_trimmed(self):
        series = np.arange(10, dtype=float)
        folded = fold_daily(series, 4)  # uses first 8 samples
        assert folded.shape == (4,)
        assert folded[0] == pytest.approx((0 + 4) / 2)

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            fold_daily(np.ones(3), 4)

    def test_periodic_series_folds_exactly(self):
        day = np.sin(np.linspace(0, 2 * np.pi, 288, endpoint=False))
        week = np.tile(day, 7)
        assert np.allclose(fold_daily(week, 288), day)
