"""Unit and property tests for time-series utilities."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.timeseries import (
    fold_daily,
    hourly_event_counts,
    hourly_occupancy,
    moving_average,
    percentile_bands,
)


class TestHourlyEventCounts:
    def test_basic_binning(self):
        times = np.array([0.0, 10.0, 3600.0, 7300.0])
        counts = hourly_event_counts(times, duration=3 * 3600)
        assert list(counts) == [2, 1, 1]

    def test_events_outside_window_ignored(self):
        times = np.array([-5.0, 100.0, 99999999.0])
        counts = hourly_event_counts(times, duration=3600)
        assert list(counts) == [1]

    def test_total_preserved(self):
        rng = np.random.default_rng(0)
        times = rng.uniform(0, 86400, 500)
        counts = hourly_event_counts(times, duration=86400)
        assert counts.sum() == 500
        assert counts.shape == (24,)

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            hourly_event_counts(np.array([1.0]), duration=0)

    @given(st.lists(st.floats(min_value=0, max_value=86399), min_size=0, max_size=200))
    @settings(max_examples=50)
    def test_conservation_property(self, times):
        counts = hourly_event_counts(np.array(times), duration=86400)
        assert counts.sum() == len(times)


class TestHourlyOccupancy:
    def test_single_interval(self):
        counts = hourly_occupancy(
            np.array([0.0]), np.array([2 * 3600.0]), duration=4 * 3600
        )
        assert list(counts) == [1, 1, 0, 0]

    def test_censored_interval_counts_forever(self):
        counts = hourly_occupancy(
            np.array([3600.0]), np.array([np.inf]), duration=3 * 3600
        )
        assert list(counts) == [0, 1, 1]

    def test_nan_end_treated_as_censored(self):
        counts = hourly_occupancy(
            np.array([0.0]), np.array([np.nan]), duration=2 * 3600
        )
        assert list(counts) == [1, 1]

    def test_interval_born_before_window(self):
        counts = hourly_occupancy(
            np.array([-100.0]), np.array([1800.0]), duration=2 * 3600
        )
        assert list(counts) == [1, 0]

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            hourly_occupancy(np.array([0.0]), np.array([1.0, 2.0]), duration=3600)

    def test_inverted_interval_never_alive(self):
        counts = hourly_occupancy(
            np.array([7200.0]), np.array([0.0]), duration=3 * 3600
        )
        assert list(counts) == [0, 0, 0]

    @staticmethod
    def _dense_reference(starts, ends, *, duration, start=0.0):
        """The original O(n_hours * n_vms) implementation, kept as an oracle."""
        starts = np.asarray(starts, dtype=np.float64).ravel()
        ends = np.asarray(ends, dtype=np.float64).ravel()
        ends = np.where(np.isnan(ends), np.inf, ends)
        n_hours = int(np.ceil(duration / 3600.0))
        boundaries = start + 3600.0 * np.arange(n_hours, dtype=np.float64)
        alive = (starts[None, :] <= boundaries[:, None]) & (
            ends[None, :] > boundaries[:, None]
        )
        return alive.sum(axis=1)

    def test_matches_dense_reference(self, rng):
        n = 500
        duration = 7 * 24 * 3600.0
        starts = rng.uniform(-3600, duration, n)
        ends = starts + rng.exponential(6 * 3600, n)
        ends[rng.random(n) < 0.1] = np.inf
        ends[rng.random(n) < 0.1] = np.nan
        fast = hourly_occupancy(starts, ends, duration=duration)
        assert np.array_equal(fast, self._dense_reference(starts, ends, duration=duration))

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-3600, max_value=86400),
                st.one_of(
                    st.floats(min_value=0, max_value=172800),
                    st.just(np.inf),
                    st.just(np.nan),
                ),
            ),
            min_size=0,
            max_size=60,
        )
    )
    @settings(max_examples=50)
    def test_equivalence_property(self, intervals):
        # Raw (possibly inverted) intervals: both implementations must agree
        # that end < start is never alive.
        starts = np.array([s for s, _ in intervals], dtype=np.float64)
        ends = np.array([e for _, e in intervals], dtype=np.float64)
        fast = hourly_occupancy(starts, ends, duration=86400)
        assert np.array_equal(
            fast, self._dense_reference(starts, ends, duration=86400)
        )

    def test_memory_stays_linear(self):
        """150k VMs x 168 hours must not allocate the dense boolean matrix.

        The dense formulation peaks at ~25 MB (n_hours * n_vms bytes); the
        searchsorted rewrite needs only a few sorted copies of the inputs,
        so peak traced allocation stays in single-digit megabytes.
        """
        import tracemalloc

        n = 150_000
        rng = np.random.default_rng(1)
        duration = 168 * 3600.0
        starts = rng.uniform(0, duration, n)
        ends = starts + rng.exponential(24 * 3600, n)
        tracemalloc.start()
        try:
            counts = hourly_occupancy(starts, ends, duration=duration)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert counts.shape == (168,)
        assert peak < 8 * 1024 * 1024


class TestMovingAverage:
    def test_window_one_is_identity(self):
        values = np.array([1.0, 5.0, 3.0])
        assert list(moving_average(values, 1)) == [1.0, 5.0, 3.0]

    def test_constant_preserved(self):
        assert np.allclose(moving_average(np.full(10, 2.0), 3), 2.0)

    def test_length_preserved(self):
        assert moving_average(np.arange(7, dtype=float), 3).shape == (7,)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            moving_average(np.ones(3), 0)

    def test_odd_window_interior_is_plain_mean(self):
        values = np.array([1.0, 2.0, 6.0, 2.0, 1.0])
        out = moving_average(values, 3)
        assert out[2] == pytest.approx((2.0 + 6.0 + 2.0) / 3)

    def test_even_window_centered_kernel(self):
        """Even windows use the half-weight [0.5, 1, ..., 1, 0.5] kernel.

        Pins the edge values so a regression back to the off-center
        np.convolve(mode="same") behaviour (which skewed every smoothed
        value toward the past) fails loudly.
        """
        values = np.arange(1.0, 7.0)  # 1..6
        out = moving_average(values, 4)
        # out[0] = (1*1 + 2*1 + 3*0.5) / (1 + 1 + 0.5)
        assert out[0] == pytest.approx(1.8)
        # interior: full kernel (0.5*1 + 2 + 3 + 4 + 0.5*5) / 4
        assert out[2] == pytest.approx((0.5 * 1 + 2 + 3 + 4 + 0.5 * 5) / 4)

    def test_even_window_constant_preserved(self):
        assert np.allclose(moving_average(np.full(10, 2.0), 4), 2.0)

    @pytest.mark.parametrize("window", [2, 3, 4, 5, 8])
    def test_time_reversal_symmetry(self, rng, window):
        """A centered smoother must commute with reversing time."""
        values = rng.uniform(0, 1, 30)
        forward = moving_average(values, window)
        backward = moving_average(values[::-1], window)[::-1]
        assert np.allclose(forward, backward)

    @pytest.mark.parametrize("window", [2, 4, 6])
    def test_window_longer_than_signal(self, window):
        values = np.array([1.0, 3.0])
        out = moving_average(values, window)
        assert out.shape == values.shape
        assert np.all(np.isfinite(out))


class TestPercentileBands:
    def test_known_percentiles(self):
        matrix = np.arange(100, dtype=float).reshape(100, 1)
        bands = percentile_bands(matrix, (50.0,))
        assert bands.band(50.0)[0] == pytest.approx(49.5)
        assert bands.n_series == 100

    def test_band_ordering(self, rng):
        matrix = rng.uniform(0, 1, size=(40, 24))
        bands = percentile_bands(matrix)
        assert np.all(bands.band(25.0) <= bands.band(50.0))
        assert np.all(bands.band(50.0) <= bands.band(75.0))
        assert np.all(bands.band(75.0) <= bands.band(95.0))

    def test_unknown_percentile_raises(self):
        bands = percentile_bands(np.ones((2, 3)), (50.0,))
        with pytest.raises(KeyError):
            bands.band(99.0)

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            percentile_bands(np.ones(5))

    def test_requires_nonempty(self):
        with pytest.raises(ValueError):
            percentile_bands(np.empty((0, 5)))

    def test_nan_gap_does_not_poison_column(self):
        """One VM's missing sample must not wipe out the whole timestamp."""
        matrix = np.array([[1.0, 1.0], [2.0, np.nan], [3.0, 3.0]])
        bands = percentile_bands(matrix, (50.0,))
        assert bands.band(50.0)[0] == pytest.approx(2.0)
        # Median over the remaining finite samples {1, 3}.
        assert bands.band(50.0)[1] == pytest.approx(2.0)
        assert bands.n_series == 3

    def test_all_nan_column_stays_nan_without_warning(self):
        matrix = np.array([[np.nan, 1.0], [np.nan, 3.0]])
        with np.errstate(all="raise"):
            import warnings

            with warnings.catch_warnings():
                warnings.simplefilter("error")
                bands = percentile_bands(matrix, (25.0, 50.0))
        assert np.all(np.isnan(bands.band(50.0)[:1]))
        assert np.isnan(bands.band(25.0)[0])
        assert bands.band(50.0)[1] == pytest.approx(2.0)

    def test_nan_free_path_unchanged(self, rng):
        matrix = rng.uniform(0, 1, size=(20, 12))
        with_nan_path = percentile_bands(matrix)
        assert np.array_equal(
            with_nan_path.bands, np.percentile(matrix, (25.0, 50.0, 75.0, 95.0), axis=0)
        )


class TestFoldDaily:
    def test_fold_average(self):
        # Two days: day 1 all zeros, day 2 all twos -> folded = ones.
        series = np.concatenate([np.zeros(4), np.full(4, 2.0)])
        assert np.allclose(fold_daily(series, 4), 1.0)

    def test_partial_day_trimmed(self):
        series = np.arange(10, dtype=float)
        folded = fold_daily(series, 4)  # uses first 8 samples
        assert folded.shape == (4,)
        assert folded[0] == pytest.approx((0 + 4) / 2)

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            fold_daily(np.ones(3), 4)

    def test_periodic_series_folds_exactly(self):
        day = np.sin(np.linspace(0, 2 * np.pi, 288, endpoint=False))
        week = np.tile(day, 7)
        assert np.allclose(fold_daily(week, 288), day)
