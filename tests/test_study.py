"""Integration tests for the one-call characterization study."""

from __future__ import annotations

import pytest

from repro.core.study import characterize_cloud, run_study
from repro.telemetry.schema import Cloud


@pytest.fixture(scope="module")
def study(medium_trace):
    return run_study(medium_trace, max_pattern_vms=300)


def test_characterize_cloud_fields(medium_trace):
    result = characterize_cloud(medium_trace, Cloud.PRIVATE, max_pattern_vms=150)
    assert result.cloud is Cloud.PRIVATE
    assert 0 <= result.shortest_bin_fraction <= 1
    assert 0 <= result.single_region_core_share <= 1
    assert result.pattern_mix.total > 0
    assert len(result.vms_per_subscription) > 0


def test_all_four_insights_hold(study):
    insights = study.insights()
    assert len(insights) == 4
    for insight, holds, evidence in insights:
        assert holds, f"{insight}: {evidence}"


def test_report_renders(study):
    report = study.report()
    assert "private" in report
    assert "HOLDS" in report
    assert "Insight 1" in report and "Insight 4" in report


def test_headline_numbers_in_paper_direction(study):
    assert study.public.shortest_bin_fraction > study.private.shortest_bin_fraction
    assert study.private.creation_cv.median > study.public.creation_cv.median
    assert (
        study.private.node_correlation.median > study.public.node_correlation.median
    )
    assert study.private.single_region_core_share < study.public.single_region_core_share
