"""Tests for the holiday-week generation mode and validity ablation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloud.autoscale import diurnal_demand
from repro.timebase import SAMPLES_PER_WEEK, SECONDS_PER_HOUR, sample_times
from repro.workloads.arrivals import diurnal_rate_curve
from repro.workloads.utilization_models import diurnal_signal


class TestHolidaySignals:
    def test_holiday_diurnal_signal_uses_weekend_peak_everywhere(self):
        times = sample_times(SAMPLES_PER_WEEK)
        signal = diurnal_signal(
            times, tz_offset_hours=0, weekday_peak=0.6, weekend_peak=0.2,
            holiday_week=True,
        )
        assert signal.max() == pytest.approx(0.2, abs=0.02)

    def test_holiday_rate_curve_damped_everywhere(self):
        curve = diurnal_rate_curve(
            base_per_hour=2, peak_per_hour=2, tz_offset_hours=0,
            weekend_factor=0.5, holiday_week=True,
        )
        monday = curve(np.array([0.0]))[0]
        assert monday == pytest.approx(1.0)

    def test_holiday_demand_damped_everywhere(self):
        ordinary = diurnal_demand(base=10, amplitude=0, tz_offset_hours=0,
                                  weekend_factor=0.5)
        holiday = diurnal_demand(base=10, amplitude=0, tz_offset_hours=0,
                                 weekend_factor=0.5, holiday_week=True)
        monday_2pm = 14 * SECONDS_PER_HOUR
        assert holiday(monday_2pm) == ordinary(monday_2pm) // 2


class TestValidityExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import validity

        return validity.run(seed=7, scale=0.12)

    def test_all_checks_pass(self, result):
        for check in result.checks:
            assert check.passed, check.render()

    def test_series_exported(self, result):
        assert "ordinary_weekly_median" in result.series
        assert "holiday_weekly_median" in result.series
        ordinary = result.series["ordinary_weekly_median"]
        holiday = result.series["holiday_weekly_median"]
        assert holiday.mean() < ordinary.mean()
