"""Round-trip tests for trace serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.telemetry.io import load_trace, save_trace
from repro.telemetry.schema import (
    Cloud,
    ClusterInfo,
    EventKind,
    EventRecord,
    NodeInfo,
    RegionInfo,
    SubscriptionInfo,
)
from repro.telemetry.store import TraceStore
from tests.test_store import make_vm


@pytest.fixture()
def populated_store():
    store = TraceStore()
    store.add_region(RegionInfo(name="us-east", tz_offset_hours=-5, country="US"))
    store.add_cluster(
        ClusterInfo(cluster_id=1, region="us-east", cloud=Cloud.PRIVATE,
                    n_nodes=2, node_capacity_cores=96, node_capacity_memory_gb=768)
    )
    store.add_node(
        NodeInfo(node_id=3, cluster_id=1, rack_id=2, region="us-east",
                 cloud=Cloud.PRIVATE, capacity_cores=96, capacity_memory_gb=768)
    )
    store.add_subscription(
        SubscriptionInfo(subscription_id=10, cloud=Cloud.PRIVATE, service="svc",
                         party="first", regions=("us-east",))
    )
    store.add_vm(make_vm(1, created_at=-50.0))  # censored
    store.add_vm(make_vm(2, created_at=0.0, ended_at=3600.0, cloud=Cloud.PUBLIC))
    store.add_event(EventRecord(3600.0, EventKind.TERMINATE, 2, Cloud.PUBLIC, "us-east"))
    store.add_utilization(
        1, np.linspace(0, 1, store.metadata.n_samples).astype(np.float32)
    )
    return store


def test_round_trip(populated_store, tmp_path):
    save_trace(populated_store, tmp_path / "trace")
    loaded = load_trace(tmp_path / "trace")

    assert len(loaded) == len(populated_store)
    vm1 = loaded.vm(1)
    assert vm1.ended_at == float("inf")
    assert vm1.created_at == -50.0
    assert vm1.cloud is Cloud.PRIVATE
    vm2 = loaded.vm(2)
    assert vm2.completed
    assert vm2.cloud is Cloud.PUBLIC

    events = loaded.events()
    assert len(events) == 1
    assert events[0].kind is EventKind.TERMINATE

    assert loaded.regions["us-east"].tz_offset_hours == -5
    assert loaded.clusters[1].n_nodes == 2
    assert loaded.nodes[3].rack_id == 2
    assert loaded.subscriptions[10].regions == ("us-east",)

    np.testing.assert_array_almost_equal(
        loaded.utilization(1), populated_store.utilization(1)
    )
    assert loaded.metadata.duration == populated_store.metadata.duration


def test_round_trip_preserves_summary(populated_store, tmp_path):
    save_trace(populated_store, tmp_path / "t")
    loaded = load_trace(tmp_path / "t")
    assert loaded.summary() == populated_store.summary()


def test_save_creates_directory(populated_store, tmp_path):
    target = tmp_path / "deep" / "nested" / "dir"
    save_trace(populated_store, target)
    assert (target / "vms.jsonl").exists()
    assert (target / "utilization.npz").exists()


def test_empty_store_round_trip(tmp_path):
    store = TraceStore()
    save_trace(store, tmp_path / "empty")
    loaded = load_trace(tmp_path / "empty")
    assert len(loaded) == 0
    assert loaded.events() == []


def test_generated_trace_round_trip(small_trace, tmp_path):
    """The real generator output survives a full round trip."""
    save_trace(small_trace, tmp_path / "gen")
    loaded = load_trace(tmp_path / "gen")
    assert len(loaded) == len(small_trace)
    assert loaded.summary() == small_trace.summary()
    # Spot-check one VM with telemetry.
    vm_id = small_trace.vm_ids_with_utilization()[0]
    np.testing.assert_array_equal(
        loaded.utilization(vm_id), small_trace.utilization(vm_id)
    )


# ----------------------------------------------------------------------
# property-based round trips (hypothesis optional, stdlib fallback)
# ----------------------------------------------------------------------
from tests.proputil import HAVE_HYPOTHESIS, given, seeded_rngs, settings, st  # noqa: E402


def _assert_vm_round_trip(store: TraceStore, directory) -> None:
    """The property both generators exercise: save/load is the identity."""
    save_trace(store, directory)
    loaded = load_trace(directory)
    assert len(loaded) == len(store)
    for vm in store.vms():
        other = loaded.vm(vm.vm_id)
        assert other == vm


if HAVE_HYPOTHESIS:
    finite_time = st.floats(min_value=-1e6, max_value=604800.0, allow_nan=False)

    @st.composite
    def vm_rows(draw, vm_id):
        created = draw(finite_time)
        censored = draw(st.booleans())
        if censored:
            ended = float("inf")
        else:
            ended = created + draw(st.floats(min_value=1.0, max_value=1e6))
        return make_vm(
            vm_id,
            cloud=draw(st.sampled_from([Cloud.PRIVATE, Cloud.PUBLIC])),
            region=draw(st.sampled_from(["us-east", "eu-west"])),
            cores=float(draw(st.sampled_from([1, 2, 4, 8, 64]))),
            created_at=created,
            ended_at=ended,
            pattern=draw(st.sampled_from(["", "diurnal", "stable"])),
            offering=draw(st.sampled_from(["iaas", "paas", "saas"])),
        )

    @given(st.data(), st.integers(1, 12))
    @settings(max_examples=25, deadline=None)
    def test_property_round_trip_vm_rows(tmp_path_factory, data, n_vms):
        store = TraceStore()
        for vm_id in range(n_vms):
            store.add_vm(data.draw(vm_rows(vm_id)))
        _assert_vm_round_trip(store, tmp_path_factory.mktemp("prop_trace"))

else:

    def _random_vm(rng, vm_id):
        created = rng.uniform(-1e6, 604800.0)
        if rng.random() < 0.5:
            ended = float("inf")
        else:
            ended = created + rng.uniform(1.0, 1e6)
        return make_vm(
            vm_id,
            cloud=rng.choice([Cloud.PRIVATE, Cloud.PUBLIC]),
            region=rng.choice(["us-east", "eu-west"]),
            cores=float(rng.choice([1, 2, 4, 8, 64])),
            created_at=created,
            ended_at=ended,
            pattern=rng.choice(["", "diurnal", "stable"]),
            offering=rng.choice(["iaas", "paas", "saas"]),
        )

    @pytest.mark.parametrize("case", range(len(seeded_rngs(25))))
    def test_property_round_trip_vm_rows(tmp_path_factory, case):
        rng = seeded_rngs(25)[case]
        store = TraceStore()
        for vm_id in range(rng.randint(1, 12)):
            store.add_vm(_random_vm(rng, vm_id))
        _assert_vm_round_trip(store, tmp_path_factory.mktemp("prop_trace"))
