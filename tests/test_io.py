"""Round-trip tests for trace serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.telemetry.io import load_trace, save_trace
from repro.telemetry.schema import (
    Cloud,
    ClusterInfo,
    EventKind,
    EventRecord,
    NodeInfo,
    RegionInfo,
    SubscriptionInfo,
)
from repro.telemetry.store import TraceStore
from tests.test_store import make_vm


@pytest.fixture()
def populated_store():
    store = TraceStore()
    store.add_region(RegionInfo(name="us-east", tz_offset_hours=-5, country="US"))
    store.add_cluster(
        ClusterInfo(cluster_id=1, region="us-east", cloud=Cloud.PRIVATE,
                    n_nodes=2, node_capacity_cores=96, node_capacity_memory_gb=768)
    )
    store.add_node(
        NodeInfo(node_id=3, cluster_id=1, rack_id=2, region="us-east",
                 cloud=Cloud.PRIVATE, capacity_cores=96, capacity_memory_gb=768)
    )
    store.add_subscription(
        SubscriptionInfo(subscription_id=10, cloud=Cloud.PRIVATE, service="svc",
                         party="first", regions=("us-east",))
    )
    store.add_vm(make_vm(1, created_at=-50.0))  # censored
    store.add_vm(make_vm(2, created_at=0.0, ended_at=3600.0, cloud=Cloud.PUBLIC))
    store.add_event(EventRecord(3600.0, EventKind.TERMINATE, 2, Cloud.PUBLIC, "us-east"))
    store.add_utilization(
        1, np.linspace(0, 1, store.metadata.n_samples).astype(np.float32)
    )
    return store


def test_round_trip(populated_store, tmp_path):
    save_trace(populated_store, tmp_path / "trace")
    loaded = load_trace(tmp_path / "trace")

    assert len(loaded) == len(populated_store)
    vm1 = loaded.vm(1)
    assert vm1.ended_at == float("inf")
    assert vm1.created_at == -50.0
    assert vm1.cloud is Cloud.PRIVATE
    vm2 = loaded.vm(2)
    assert vm2.completed
    assert vm2.cloud is Cloud.PUBLIC

    events = loaded.events()
    assert len(events) == 1
    assert events[0].kind is EventKind.TERMINATE

    assert loaded.regions["us-east"].tz_offset_hours == -5
    assert loaded.clusters[1].n_nodes == 2
    assert loaded.nodes[3].rack_id == 2
    assert loaded.subscriptions[10].regions == ("us-east",)

    np.testing.assert_array_almost_equal(
        loaded.utilization(1), populated_store.utilization(1)
    )
    assert loaded.metadata.duration == populated_store.metadata.duration


def test_round_trip_preserves_summary(populated_store, tmp_path):
    save_trace(populated_store, tmp_path / "t")
    loaded = load_trace(tmp_path / "t")
    assert loaded.summary() == populated_store.summary()


def test_save_creates_directory(populated_store, tmp_path):
    target = tmp_path / "deep" / "nested" / "dir"
    save_trace(populated_store, target)
    assert (target / "vms.jsonl").exists()
    # Format v2: sharded utilization directory instead of utilization.npz.
    assert (target / "utilization" / "index.json").exists()
    assert list((target / "utilization").glob("*.npy"))


def test_empty_store_round_trip(tmp_path):
    store = TraceStore()
    save_trace(store, tmp_path / "empty")
    loaded = load_trace(tmp_path / "empty")
    assert len(loaded) == 0
    assert loaded.events() == []


def test_generated_trace_round_trip(small_trace, tmp_path):
    """The real generator output survives a full round trip."""
    save_trace(small_trace, tmp_path / "gen")
    loaded = load_trace(tmp_path / "gen")
    assert len(loaded) == len(small_trace)
    assert loaded.summary() == small_trace.summary()
    # Spot-check one VM with telemetry.
    vm_id = small_trace.vm_ids_with_utilization()[0]
    np.testing.assert_array_equal(
        loaded.utilization(vm_id), small_trace.utilization(vm_id)
    )


# ----------------------------------------------------------------------
# property-based round trips (hypothesis optional, stdlib fallback)
# ----------------------------------------------------------------------
from tests.proputil import HAVE_HYPOTHESIS, given, seeded_rngs, settings, st  # noqa: E402


def _assert_vm_round_trip(store: TraceStore, directory) -> None:
    """The property both generators exercise: save/load is the identity."""
    save_trace(store, directory)
    loaded = load_trace(directory)
    assert len(loaded) == len(store)
    for vm in store.vms():
        other = loaded.vm(vm.vm_id)
        assert other == vm


if HAVE_HYPOTHESIS:
    finite_time = st.floats(min_value=-1e6, max_value=604800.0, allow_nan=False)

    @st.composite
    def vm_rows(draw, vm_id):
        created = draw(finite_time)
        censored = draw(st.booleans())
        if censored:
            ended = float("inf")
        else:
            ended = created + draw(st.floats(min_value=1.0, max_value=1e6))
        return make_vm(
            vm_id,
            cloud=draw(st.sampled_from([Cloud.PRIVATE, Cloud.PUBLIC])),
            region=draw(st.sampled_from(["us-east", "eu-west"])),
            cores=float(draw(st.sampled_from([1, 2, 4, 8, 64]))),
            created_at=created,
            ended_at=ended,
            pattern=draw(st.sampled_from(["", "diurnal", "stable"])),
            offering=draw(st.sampled_from(["iaas", "paas", "saas"])),
        )

    @given(st.data(), st.integers(1, 12))
    @settings(max_examples=25, deadline=None)
    def test_property_round_trip_vm_rows(tmp_path_factory, data, n_vms):
        store = TraceStore()
        for vm_id in range(n_vms):
            store.add_vm(data.draw(vm_rows(vm_id)))
        _assert_vm_round_trip(store, tmp_path_factory.mktemp("prop_trace"))

else:

    def _random_vm(rng, vm_id):
        created = rng.uniform(-1e6, 604800.0)
        if rng.random() < 0.5:
            ended = float("inf")
        else:
            ended = created + rng.uniform(1.0, 1e6)
        return make_vm(
            vm_id,
            cloud=rng.choice([Cloud.PRIVATE, Cloud.PUBLIC]),
            region=rng.choice(["us-east", "eu-west"]),
            cores=float(rng.choice([1, 2, 4, 8, 64])),
            created_at=created,
            ended_at=ended,
            pattern=rng.choice(["", "diurnal", "stable"]),
            offering=rng.choice(["iaas", "paas", "saas"]),
        )

    @pytest.mark.parametrize("case", range(len(seeded_rngs(25))))
    def test_property_round_trip_vm_rows(tmp_path_factory, case):
        rng = seeded_rngs(25)[case]
        store = TraceStore()
        for vm_id in range(rng.randint(1, 12)):
            store.add_vm(_random_vm(rng, vm_id))
        _assert_vm_round_trip(store, tmp_path_factory.mktemp("prop_trace"))


# ----------------------------------------------------------------------
# trace-format v2 (sharded utilization) and the kept v1 reader
# ----------------------------------------------------------------------
from repro.telemetry.io import save_trace_atomic, verify_trace_dir  # noqa: E402
from repro.telemetry.shards import ShardRef, mmap_cache  # noqa: E402
from repro.telemetry.store import TraceStore as _TraceStore  # noqa: E402


def test_v1_save_load_round_trip(populated_store, tmp_path):
    """The v1 (utilization.npz) writer and reader are kept for old traces."""
    save_trace(populated_store, tmp_path / "v1", version=1)
    assert (tmp_path / "v1" / "utilization.npz").exists()
    assert not (tmp_path / "v1" / "utilization").exists()
    loaded = load_trace(tmp_path / "v1")
    np.testing.assert_array_equal(
        loaded.utilization(1), populated_store.utilization(1)
    )
    assert loaded.summary() == populated_store.summary()


def test_v1_load_builds_single_block(populated_store, tmp_path):
    """Regression: the v1 reader must not fragment into 1-row blocks."""
    save_trace(populated_store, tmp_path / "v1", version=1)
    loaded = load_trace(tmp_path / "v1")
    assert len(loaded._util_blocks) == 1
    assert isinstance(loaded._util_blocks[0], np.ndarray)


def test_unknown_format_version_rejected(populated_store, tmp_path):
    with pytest.raises(ValueError, match="version"):
        save_trace(populated_store, tmp_path / "bad", version=99)


def test_v2_load_is_lazy(populated_store, tmp_path):
    """Loading a v2 trace attaches shards by path without reading them."""
    save_trace(populated_store, tmp_path / "v2")
    mmap_cache().clear()
    loaded = load_trace(tmp_path / "v2")
    assert loaded._util_blocks
    assert all(isinstance(b, ShardRef) for b in loaded._util_blocks)
    # Nothing mapped yet: the load itself read only the index.
    assert len(mmap_cache()) == 0
    np.testing.assert_array_equal(
        loaded.utilization(1), populated_store.utilization(1)
    )
    assert len(mmap_cache()) > 0


def test_v2_values_bit_identical_to_v1(small_trace, tmp_path):
    save_trace(small_trace, tmp_path / "v1", version=1)
    save_trace(small_trace, tmp_path / "v2", version=2)
    a = load_trace(tmp_path / "v1")
    b = load_trace(tmp_path / "v2")
    assert a.vm_ids_with_utilization() == b.vm_ids_with_utilization()
    for vm_id in a.vm_ids_with_utilization():
        np.testing.assert_array_equal(a.utilization(vm_id), b.utilization(vm_id))


def test_v2_shallow_verify_catches_size_change(populated_store, tmp_path):
    from repro.telemetry.io import TraceCorruptionError

    target = tmp_path / "t"
    save_trace(populated_store, target)
    shard = next((target / "utilization").glob("*.npy"))
    shard.write_bytes(shard.read_bytes()[:-8])  # truncate
    with pytest.raises(TraceCorruptionError):
        verify_trace_dir(target)


def test_v2_deep_verify_catches_bit_flip(populated_store, tmp_path):
    """Same-size corruption passes the shallow check but fails deep=True."""
    from repro.telemetry.io import TraceCorruptionError

    target = tmp_path / "t"
    save_trace(populated_store, target)
    shard = next((target / "utilization").glob("*.npy"))
    payload = bytearray(shard.read_bytes())
    payload[-1] ^= 0xFF
    shard.write_bytes(bytes(payload))
    verify_trace_dir(target)  # shallow: size unchanged, passes
    with pytest.raises(TraceCorruptionError):
        verify_trace_dir(target, deep=True)


def test_v2_save_adopts_spilled_shards_by_hardlink(tmp_path):
    """Saving a store whose blocks are already shards links, not rewrites."""
    import os

    from repro.telemetry.shards import write_shard
    from tests.test_store import make_vm as _mk

    store = _TraceStore()
    n = store.metadata.n_samples
    for vm_id in (1, 2):
        store.add_vm(_mk(vm_id))
    spill = tmp_path / "spill"
    spill.mkdir()
    ref = write_shard(
        spill / "x.npy", np.full((2, n), 0.5, dtype=np.float32)
    )
    store.add_utilization_shard([1, 2], ref)
    target = tmp_path / "trace"
    save_trace(store, target)
    adopted = next((target / "utilization").glob("*-x.npy"))
    assert os.stat(adopted).st_ino == os.stat(spill / "x.npy").st_ino
    # The store's ref now points into the saved trace, so the spill
    # directory can be deleted without breaking reads.
    assert store._util_blocks[0].path == adopted
    import shutil

    shutil.rmtree(spill)
    assert float(store.utilization(1)[0]) == np.float32(0.5)


def test_v2_atomic_save_round_trip(populated_store, tmp_path):
    target = tmp_path / "atomic"
    save_trace_atomic(populated_store, target)
    loaded = load_trace(target)
    assert loaded.summary() == populated_store.summary()
    np.testing.assert_array_equal(
        loaded.utilization(1), populated_store.utilization(1)
    )
