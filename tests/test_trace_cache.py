"""Tests for the content-addressed trace cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import cache
from repro.experiments.config import ExperimentConfig, clear_trace_cache, get_trace
from repro.telemetry.io import is_trace_dir, load_trace, save_trace_atomic
from repro.workloads.generator import GeneratorConfig

SMALL = GeneratorConfig(seed=3, scale=0.05)


@pytest.fixture(autouse=True)
def _isolated_memo():
    """Keep the in-process memo from leaking between cache tests."""
    clear_trace_cache()
    yield
    clear_trace_cache()


class TestConfigHash:
    def test_deterministic(self):
        assert cache.config_hash(SMALL) == cache.config_hash(GeneratorConfig(seed=3, scale=0.05))

    def test_sensitive_to_seed_and_scale(self):
        base = cache.config_hash(SMALL)
        assert cache.config_hash(GeneratorConfig(seed=4, scale=0.05)) != base
        assert cache.config_hash(GeneratorConfig(seed=3, scale=0.06)) != base

    def test_sensitive_to_every_field(self):
        base = cache.config_hash(SMALL)
        assert cache.config_hash(GeneratorConfig(seed=3, scale=0.05, holiday_week=True)) != base
        assert (
            cache.config_hash(GeneratorConfig(seed=3, scale=0.05, synthesize_utilization=False))
            != base
        )

    def test_sensitive_to_generator_version(self, monkeypatch):
        base = cache.config_hash(SMALL)
        monkeypatch.setattr(cache, "GENERATOR_VERSION", "test-bump")
        assert cache.config_hash(SMALL) != base

    def test_experiment_config_hash_matches(self):
        config = ExperimentConfig(seed=3, scale=0.05)
        assert config.config_hash() == cache.config_hash(config.generator_config())


class TestFetchTrace:
    def test_cold_then_warm(self, tmp_path):
        store, info = cache.fetch_trace(SMALL, cache_dir=tmp_path)
        assert not info.hit
        assert info.source == "generated"
        assert is_trace_dir(info.path)

        warm, warm_info = cache.fetch_trace(SMALL, cache_dir=tmp_path)
        assert warm_info.hit
        assert warm_info.source == "disk"
        assert warm_info.key == info.key
        assert len(warm) == len(store)
        assert warm.summary() == store.summary()

    def test_round_trip_preserves_utilization(self, tmp_path):
        store, _ = cache.fetch_trace(SMALL, cache_dir=tmp_path)
        warm, _ = cache.fetch_trace(SMALL, cache_dir=tmp_path)
        vm_id = store.vm_ids_with_utilization()[0]
        np.testing.assert_array_equal(warm.utilization(vm_id), store.utilization(vm_id))

    def test_different_configs_do_not_collide(self, tmp_path):
        _, a = cache.fetch_trace(SMALL, cache_dir=tmp_path)
        _, b = cache.fetch_trace(GeneratorConfig(seed=4, scale=0.05), cache_dir=tmp_path)
        assert a.key != b.key
        assert a.path != b.path

    def test_no_cache_bypasses_disk(self, tmp_path):
        cache.fetch_trace(SMALL, cache_dir=tmp_path)
        _, info = cache.fetch_trace(SMALL, cache_dir=tmp_path, use_cache=False)
        assert not info.hit
        assert info.source == "generated"

    def test_env_var_overrides_default_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv(cache.ENV_CACHE_DIR, str(tmp_path / "env-root"))
        assert cache.resolve_cache_dir() == tmp_path / "env-root"
        _, info = cache.fetch_trace(SMALL)
        assert str(tmp_path / "env-root") in info.path

    def test_explicit_dir_beats_env_var(self, tmp_path, monkeypatch):
        monkeypatch.setenv(cache.ENV_CACHE_DIR, str(tmp_path / "env-root"))
        assert cache.resolve_cache_dir(tmp_path / "explicit") == tmp_path / "explicit"

    def test_no_temp_leftovers(self, tmp_path):
        cache.fetch_trace(SMALL, cache_dir=tmp_path)
        leftovers = [p for p in (tmp_path / "traces").iterdir() if ".tmp" in p.name]
        assert leftovers == []

    def test_clear_cache(self, tmp_path):
        cache.fetch_trace(SMALL, cache_dir=tmp_path)
        assert cache.clear_cache(tmp_path) == 1
        assert cache.clear_cache(tmp_path) == 0
        _, info = cache.fetch_trace(SMALL, cache_dir=tmp_path)
        assert not info.hit


class TestSaveTraceAtomic:
    def test_concurrent_writer_race_keeps_winner(self, tmp_path):
        store, _ = cache.fetch_trace(SMALL, cache_dir=tmp_path, use_cache=False)
        target = tmp_path / "trace"
        save_trace_atomic(store, target)
        # A losing second writer must leave the winner's copy intact.
        save_trace_atomic(store, target)
        assert is_trace_dir(target)
        assert len(load_trace(target)) == len(store)

    def test_failed_save_leaves_no_tmp_residue(self, tmp_path, monkeypatch):
        store, _ = cache.fetch_trace(SMALL, cache_dir=tmp_path, use_cache=False)

        def explode(*args, **kwargs):
            raise OSError("disk full")

        # Patch the internal writer: save_trace_atomic routes through
        # _save_trace so shard refs are only re-pointed after the rename.
        monkeypatch.setattr("repro.telemetry.io._save_trace", explode)
        target = tmp_path / "doomed" / "trace"
        with pytest.raises(OSError, match="disk full"):
            save_trace_atomic(store, target)
        # The staging directory is cleaned up even though the save failed.
        assert not target.exists()
        assert [p for p in target.parent.iterdir() if ".tmp" in p.name] == []

    def test_cleanup_failure_is_counted_not_raised(self, tmp_path, monkeypatch):
        from repro.obs import metrics
        from repro.telemetry import io as telemetry_io

        store, _ = cache.fetch_trace(SMALL, cache_dir=tmp_path, use_cache=False)

        def broken_rmtree(path, **kwargs):
            raise OSError("cleanup denied")

        monkeypatch.setattr(telemetry_io.shutil, "rmtree", broken_rmtree)
        before = metrics.REGISTRY.counter_value("io.tmp_cleanup_failed")
        target = tmp_path / "leaky" / "trace"
        save_trace_atomic(store, target)  # the save itself must still succeed
        assert is_trace_dir(target)
        assert metrics.REGISTRY.counter_value("io.tmp_cleanup_failed") == before + 1


class TestExperimentConfigMemo:
    def test_memoized_within_process(self, tmp_path):
        config = ExperimentConfig(seed=3, scale=0.05)
        first = get_trace(config, cache_dir=tmp_path)
        assert get_trace(config, cache_dir=tmp_path) is first

    def test_clear_trace_cache_forces_refetch(self, tmp_path):
        config = ExperimentConfig(seed=3, scale=0.05)
        first = get_trace(config, cache_dir=tmp_path)
        clear_trace_cache()
        second = get_trace(config, cache_dir=tmp_path)
        assert second is not first
        assert second.summary() == first.summary()
