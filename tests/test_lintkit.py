"""Tests for repro.lintkit: rule fixtures, pragmas, baseline, CLI, self-check."""

from __future__ import annotations

import ast
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lintkit import (
    Diagnostic,
    Rule,
    apply_baseline,
    build_baseline,
    lint_paths,
    load_baseline,
    render_json,
    write_baseline,
)
from repro.lintkit.baseline import BaselineError

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_TREE = REPO_ROOT / "src" / "repro"


def lint_snippets(tmp_path: Path, files: dict[str, str], **kwargs):
    """Write ``files`` under ``tmp_path`` and lint the tree."""
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return lint_paths([tmp_path], root=tmp_path, **kwargs)


def codes(result) -> list[str]:
    return [diag.code for diag in result.diagnostics]


# ----------------------------------------------------------------------
# REP001: unseeded randomness
# ----------------------------------------------------------------------


def test_rep001_flags_legacy_np_random(tmp_path):
    result = lint_snippets(tmp_path, {"mod.py": (
        "import numpy as np\n"
        "x = np.random.rand(4)\n"
        "y = np.random.choice([1, 2])\n"
    )})
    assert codes(result) == ["REP001", "REP001"]
    assert "legacy global state" in result.diagnostics[0].message


def test_rep001_flags_stdlib_random_and_from_import(tmp_path):
    result = lint_snippets(tmp_path, {"mod.py": (
        "import random\n"
        "from random import choice\n"
        "r = random.random()\n"
    )})
    assert codes(result) == ["REP001", "REP001"]  # the from-import + the call


def test_rep001_flags_seedless_constructors(tmp_path):
    result = lint_snippets(tmp_path, {"mod.py": (
        "import numpy as np\n"
        "a = np.random.default_rng()\n"
        "b = np.random.SFC64()\n"
        "c = np.random.SeedSequence()\n"
        "d = np.random.RandomState(3)\n"
    )})
    assert codes(result) == ["REP001"] * 4


def test_rep001_allows_seeded_generator_threading(tmp_path):
    result = lint_snippets(tmp_path, {"mod.py": (
        "import numpy as np\n"
        "rng = np.random.default_rng(7)\n"
        "fill = np.random.Generator(np.random.SFC64(int(rng.integers(2**63))))\n"
        "def f(r: np.random.Generator | None = None):\n"
        "    return (r or np.random.default_rng(0)).normal()\n"
    )})
    assert codes(result) == []


# ----------------------------------------------------------------------
# REP002: wall-clock reads
# ----------------------------------------------------------------------


def test_rep002_flags_clock_reads(tmp_path):
    result = lint_snippets(tmp_path, {"mod.py": (
        "import time\n"
        "from time import monotonic as mono\n"
        "from datetime import datetime\n"
        "a = time.time()\n"
        "b = time.perf_counter()\n"
        "c = mono()\n"
        "d = datetime.now()\n"
        "time.sleep(0.1)\n"  # sleeping is not a clock *read*
    )})
    assert codes(result) == ["REP002"] * 4


def test_rep002_allows_obs_package(tmp_path):
    result = lint_snippets(tmp_path, {"obs/tracing.py": (
        "import time\n"
        "t0 = time.perf_counter()\n"
    )})
    assert codes(result) == []


def test_pragma_suppresses_same_and_previous_line(tmp_path):
    result = lint_snippets(tmp_path, {"mod.py": (
        "import time\n"
        "a = time.time()  # lint: allow[REP002] -- justified\n"
        "# lint: allow[REP002] -- justified on the line above\n"
        "b = time.time()\n"
        "c = time.time()  # lint: allow[REP001] -- wrong code, no effect\n"
        "d = time.time()  # lint: allow[*]\n"
    )})
    assert codes(result) == ["REP002"]  # only the wrong-code line survives
    assert result.diagnostics[0].line == 5
    assert result.suppressed_pragma == 3


def test_pragma_on_first_line_of_file(tmp_path):
    result = lint_snippets(tmp_path, {"mod.py": (
        "from random import choice  # lint: allow[REP001] -- seeded upstream\n"
    )})
    assert codes(result) == []
    assert result.suppressed_pragma == 1


def test_pragma_on_multiline_statement_closing_line(tmp_path):
    """A finding spanning lines accepts a pragma on its *closing* line."""
    result = lint_snippets(tmp_path, {"mod.py": (
        "import time\n"
        "a = time.time(\n"
        ")  # lint: allow[REP002] -- pragma on the closing paren line\n"
    )})
    assert codes(result) == []
    assert result.suppressed_pragma == 1


class _EveryDefRule(Rule):
    """Test-only rule anchoring a finding at every function definition."""

    code = "TST001"
    name = "every-def"
    description = "flags each def (exercises decorated-def pragma spans)"

    def check(self, ctx):
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.FunctionDef):
                yield ctx.diagnostic(self.code, node, f"def {node.name}")


def test_pragma_above_decorator_stack_covers_the_def(tmp_path):
    """For decorated defs the pragma window starts above the *decorators*,
    even though the diagnostic anchors at the ``def`` line itself."""
    result = lint_snippets(tmp_path, {"mod.py": (
        "# lint: allow[TST001] -- suppressed above the decorator stack\n"
        "@property\n"
        "@staticmethod\n"
        "def covered():\n"
        "    return 1\n"
        "@property\n"
        "def uncovered():\n"
        "    return 2\n"
        "def inline():  # lint: allow[TST001]\n"
        "    return 3\n"
    )}, rules=[_EveryDefRule()])
    assert codes(result) == ["TST001"]
    assert "uncovered" in result.diagnostics[0].message
    assert result.suppressed_pragma == 2


# ----------------------------------------------------------------------
# REP003: cache-key coverage
# ----------------------------------------------------------------------

_CONFIG_SRC = (
    "from dataclasses import dataclass\n"
    "@dataclass\n"
    "class GeneratorConfig:\n"
    "    seed: int = 7\n"
    "    scale: float = 1.0\n"
    "    debug_label: str = ''\n"
)


def test_rep003_missing_field_is_flagged(tmp_path):
    result = lint_snippets(tmp_path, {
        "generator.py": _CONFIG_SRC,
        "cache.py": (
            "CACHE_KEY_FIELDS = ('seed', 'scale')\n"
            "CACHE_KEY_EXEMPT = frozenset()\n"
        ),
    })
    assert codes(result) == ["REP003"]
    assert "debug_label" in result.diagnostics[0].message
    assert result.diagnostics[0].path == "generator.py"


def test_rep003_exempt_field_is_clean(tmp_path):
    result = lint_snippets(tmp_path, {
        "generator.py": _CONFIG_SRC,
        "cache.py": (
            "CACHE_KEY_FIELDS = ('seed', 'scale')\n"
            "CACHE_KEY_EXEMPT = frozenset({'debug_label'})\n"
        ),
    })
    assert codes(result) == []


def test_rep003_generic_fields_loop_covers_everything(tmp_path):
    result = lint_snippets(tmp_path, {
        "generator.py": _CONFIG_SRC,
        "cache.py": (
            "import dataclasses\n"
            "def config_hash(config):\n"
            "    payload = {}\n"
            "    for field in dataclasses.fields(config):\n"
            "        payload[field.name] = getattr(config, field.name)\n"
            "    return str(sorted(payload.items()))\n"
        ),
    })
    assert codes(result) == []


def test_rep003_stale_and_double_listed_entries(tmp_path):
    result = lint_snippets(tmp_path, {
        "generator.py": _CONFIG_SRC,
        "cache.py": (
            "CACHE_KEY_FIELDS = ('seed', 'scale', 'debug_label', 'removed_knob')\n"
            "CACHE_KEY_EXEMPT = frozenset({'debug_label'})\n"
        ),
    })
    messages = [d.message for d in result.diagnostics]
    assert codes(result) == ["REP003", "REP003"]
    assert any("removed_knob" in m and "stale" in m for m in messages)
    assert any("debug_label" in m and "both" in m for m in messages)


def test_rep003_catches_unkeyed_field_added_to_real_tree(tmp_path):
    """Acceptance check: a new GeneratorConfig knob must be caught."""
    generator_src = (SRC_TREE / "workloads" / "generator.py").read_text()
    marker = "    telemetry_batch: bool = True\n"
    assert marker in generator_src
    generator_src = generator_src.replace(
        marker, marker + "    sneaky_new_knob: float = 1.0\n"
    )
    result = lint_snippets(tmp_path, {
        "generator.py": generator_src,
        "cache.py": (SRC_TREE / "experiments" / "cache.py").read_text(),
    }, select=["REP003"])
    assert codes(result) == ["REP003"]
    assert "sneaky_new_knob" in result.diagnostics[0].message


def test_rep001_catches_unseeded_call_added_to_real_tree(tmp_path):
    """Acceptance check: a deliberate np.random.rand in generator code."""
    generator_src = (SRC_TREE / "workloads" / "generator.py").read_text()
    generator_src += "\n\ndef _sloppy():\n    return np.random.rand(8)\n"
    result = lint_snippets(
        tmp_path, {"workloads/generator.py": generator_src}, select=["REP001"]
    )
    assert codes(result) == ["REP001"]
    assert "np.random.rand" in result.diagnostics[0].snippet


# ----------------------------------------------------------------------
# REP004: silent broad except
# ----------------------------------------------------------------------


def test_rep004_flags_silent_broad_handlers(tmp_path):
    result = lint_snippets(tmp_path, {"mod.py": (
        "def f():\n"
        "    try:\n"
        "        work()\n"
        "    except Exception:\n"
        "        pass\n"
        "def g():\n"
        "    try:\n"
        "        work()\n"
        "    except (ValueError, BaseException):\n"
        "        log('oops')\n"
        "def h():\n"
        "    try:\n"
        "        work()\n"
        "    except:\n"
        "        return None\n"
    )})
    assert codes(result) == ["REP004"] * 3


def test_rep004_allows_reraise_counter_and_narrow(tmp_path):
    result = lint_snippets(tmp_path, {"mod.py": (
        "def f():\n"
        "    try:\n"
        "        work()\n"
        "    except Exception:\n"
        "        raise\n"
        "def g():\n"
        "    try:\n"
        "        work()\n"
        "    except Exception:\n"
        "        _SWALLOWED.inc()\n"
        "def h():\n"
        "    try:\n"
        "        work()\n"
        "    except (OSError, ValueError):\n"
        "        pass\n"
    )})
    assert codes(result) == []


# ----------------------------------------------------------------------
# REP005: unsorted iteration feeding sinks
# ----------------------------------------------------------------------


def test_rep005_flags_unsorted_iteration_near_hashing(tmp_path):
    result = lint_snippets(tmp_path, {"mod.py": (
        "import hashlib\n"
        "def digest(d):\n"
        "    h = hashlib.sha256()\n"
        "    for value in d.values():\n"
        "        h.update(value)\n"
        "    return h.hexdigest()\n"
        "def dispatch(pool, tasks):\n"
        "    return [pool.submit(t) for t in {'a', 'b'}]\n"
    )})
    assert codes(result) == ["REP005", "REP005"]


def test_rep005_allows_sorted_iteration_and_plain_functions(tmp_path):
    result = lint_snippets(tmp_path, {"mod.py": (
        "import hashlib\n"
        "def digest(d):\n"
        "    h = hashlib.sha256()\n"
        "    for key, value in sorted(d.items()):\n"
        "        h.update(value)\n"
        "    return h.hexdigest()\n"
        "def harmless(d):\n"
        "    return [v for v in d.values()]\n"  # no sink in this function
    )})
    assert codes(result) == []


# ----------------------------------------------------------------------
# REP006: metric/span names
# ----------------------------------------------------------------------


def test_rep006_flags_bad_names_and_double_registration(tmp_path):
    result = lint_snippets(tmp_path, {
        "a.py": (
            "from repro.obs import Counter, span\n"
            "_HITS = Counter('cache.hit')\n"
            "_BAD = Counter('CacheMisses')\n"
            "def f():\n"
            "    with span('Bad Name'):\n"
            "        pass\n"
        ),
        "b.py": (
            "from repro.obs.metrics import Counter\n"
            "_ALSO_HITS = Counter('cache.hit')\n"
        ),
    })
    by_code = codes(result)
    assert by_code.count("REP006") == 4  # 2 bad names + both duplicate sites
    duplicate = [d for d in result.diagnostics if "multiple modules" in d.message]
    assert {d.path for d in duplicate} == {"a.py", "b.py"}


def test_rep006_ignores_collections_counter(tmp_path):
    result = lint_snippets(tmp_path, {"mod.py": (
        "from collections import Counter\n"
        "c = Counter('NOT a metric name')\n"
    )})
    assert codes(result) == []


# ----------------------------------------------------------------------
# REP007: known-slow idioms in loops (core/ and analysis/ only)
# ----------------------------------------------------------------------


def test_rep007_flags_slow_calls_in_loops(tmp_path):
    result = lint_snippets(tmp_path, {"core/mod.py": (
        "import numpy as np\n"
        "def f(block, pearson_correlation):\n"
        "    out = np.array([])\n"
        "    for row in block:\n"
        "        r = np.corrcoef(row, block[0])\n"
        "        s = np.fft.rfft(row)\n"
        "        out = np.append(out, r)\n"
        "    i = 0\n"
        "    while i < len(block):\n"
        "        pearson_correlation(block[i], block[0])\n"
        "        i += 1\n"
    )})
    assert codes(result) == ["REP007"] * 4
    assert "batched" in result.diagnostics[0].fix_hint


def test_rep007_flags_comprehensions_but_not_first_iter(tmp_path):
    result = lint_snippets(tmp_path, {"analysis/mod.py": (
        "import numpy as np\n"
        "def f(block):\n"
        "    a = [np.fft.rfft(row) for row in block]\n"
        "    # The first generator's iterable evaluates once, not per item.\n"
        "    b = [row.sum() for row in np.fft.rfft(block, axis=1)]\n"
        "    c = [row for row in block if np.corrcoef(row, block[0])[0, 1] > 0]\n"
    )})
    assert codes(result) == ["REP007"] * 2
    assert [d.line for d in result.diagnostics] == [3, 6]


def test_rep007_ignores_calls_outside_loops_and_other_packages(tmp_path):
    result = lint_snippets(tmp_path, {
        "core/mod.py": (
            "import numpy as np\n"
            "spectrum = np.fft.rfft(np.ones(16))\n"  # once, not per series
        ),
        "experiments/mod.py": (
            "import numpy as np\n"
            "def f(block):\n"
            "    return [np.corrcoef(r, block[0]) for r in block]\n"
        ),
    })
    assert codes(result) == []


def test_rep007_pragma_suppression(tmp_path):
    result = lint_snippets(tmp_path, {"core/mod.py": (
        "import numpy as np\n"
        "def f(block):\n"
        "    for row in block:\n"
        "        # lint: allow[REP007] -- scalar reference path\n"
        "        np.fft.rfft(row)\n"
    )})
    assert codes(result) == []
    assert result.suppressed_pragma == 1


# ----------------------------------------------------------------------
# baseline workflow
# ----------------------------------------------------------------------

_VIOLATION = "import time\nt = time.time()\n"


def test_baseline_round_trip(tmp_path):
    result = lint_snippets(tmp_path, {"mod.py": _VIOLATION})
    assert codes(result) == ["REP002"]

    baseline_path = write_baseline(result.diagnostics, tmp_path / "baseline.json")
    baseline = load_baseline(baseline_path)
    assert len(baseline["entries"]) == 1

    rerun = lint_paths([tmp_path / "mod.py"], root=tmp_path)
    kept, suppressed = apply_baseline(rerun.diagnostics, baseline)
    assert kept == [] and suppressed == 1


def test_baseline_resurfaces_changed_lines_and_caps_counts(tmp_path):
    result = lint_snippets(tmp_path, {"mod.py": _VIOLATION})
    baseline = build_baseline(result.diagnostics)

    # The offending line changed: its fingerprint no longer matches.
    (tmp_path / "mod.py").write_text("import time\nt = time.time() + 1\n")
    rerun = lint_paths([tmp_path / "mod.py"], root=tmp_path)
    kept, suppressed = apply_baseline(rerun.diagnostics, baseline)
    assert codes(rerun) == ["REP002"] and kept == rerun.diagnostics

    # Two identical offending lines, baseline budget of one: one survives.
    (tmp_path / "mod.py").write_text(
        "import time\nt = time.time()\nu = time.time()\n"
    )
    rerun = lint_paths([tmp_path / "mod.py"], root=tmp_path)
    kept, suppressed = apply_baseline(rerun.diagnostics, baseline)
    assert len(rerun.diagnostics) == 2 and suppressed == 1 and len(kept) == 1


def test_baseline_survives_file_rename(tmp_path):
    """Exact fingerprints embed the path, so a pure rename used to
    resurface every baselined finding; the content-anchored fallback
    (code + snippet) absorbs them -- but an edited line still surfaces."""
    result = lint_snippets(tmp_path, {"old.py": _VIOLATION})
    baseline = build_baseline(result.diagnostics)

    (tmp_path / "old.py").rename(tmp_path / "renamed.py")
    rerun = lint_paths([tmp_path], root=tmp_path)
    kept, suppressed = apply_baseline(rerun.diagnostics, baseline)
    assert kept == [] and suppressed == 1

    # Rename *and* change the offending line: no grandfathering.
    (tmp_path / "renamed.py").write_text("import time\nt = time.time() + 1\n")
    rerun = lint_paths([tmp_path], root=tmp_path)
    kept, suppressed = apply_baseline(rerun.diagnostics, baseline)
    assert codes(rerun) == ["REP002"] and kept == rerun.diagnostics


def test_baseline_rename_budget_is_shared_with_duplicates(tmp_path):
    """A renamed finding and a pasted duplicate compete for one count."""
    result = lint_snippets(tmp_path, {"old.py": _VIOLATION})
    baseline = build_baseline(result.diagnostics)

    (tmp_path / "old.py").unlink()
    (tmp_path / "renamed.py").write_text(
        "import time\nt = time.time()\nt = time.time()\n"
    )
    rerun = lint_paths([tmp_path], root=tmp_path)
    assert len(rerun.diagnostics) == 2
    kept, suppressed = apply_baseline(rerun.diagnostics, baseline)
    assert suppressed == 1 and len(kept) == 1


def test_baseline_rejects_malformed_documents(tmp_path):
    bad = tmp_path / "baseline.json"
    bad.write_text("{}")
    with pytest.raises(BaselineError):
        load_baseline(bad)
    bad.write_text('{"schema_version": 99, "entries": {}}')
    with pytest.raises(BaselineError):
        load_baseline(bad)
    with pytest.raises(BaselineError):
        load_baseline(tmp_path / "missing.json")


# ----------------------------------------------------------------------
# report schemas, selection, parse errors
# ----------------------------------------------------------------------


def test_json_report_schema(tmp_path):
    result = lint_snippets(tmp_path, {"mod.py": _VIOLATION})
    document = json.loads(render_json(result))
    assert document["schema_version"] == 1
    assert document["exit_code"] == 1
    assert document["counts"] == {"REP002": 1}
    assert document["suppressed"] == {"pragma": 0, "baseline": 0}
    (finding,) = document["findings"]
    assert set(finding) == {
        "code", "message", "path", "line", "col", "snippet",
        "fix_hint", "fingerprint",
    }
    assert finding["path"] == "mod.py" and finding["line"] == 2


def test_select_and_ignore_filtering(tmp_path):
    files = {"mod.py": "import time\nimport random\nt = time.time()\n"}
    # A plain ``import random`` alone does not trip REP001; only use does.
    assert codes(lint_snippets(tmp_path, files)) == ["REP002"]
    files["mod.py"] += "r = random.random()\n"
    result = lint_snippets(tmp_path, files)
    assert sorted(codes(result)) == ["REP001", "REP002"]
    assert codes(lint_snippets(tmp_path, files, select=["REP001"])) == ["REP001"]
    assert codes(lint_snippets(tmp_path, files, ignore=["REP001"])) == ["REP002"]


def test_parse_error_reported_not_ignorable(tmp_path):
    result = lint_snippets(
        tmp_path, {"broken.py": "def f(:\n"}, select=["REP001"]
    )
    assert codes(result) == ["REP000"]
    assert result.exit_code == 1


def test_diagnostic_fingerprint_stable_across_line_drift():
    a = Diagnostic("REP002", "m", "mod.py", 10, 5, snippet="t = time.time()")
    b = Diagnostic("REP002", "m", "mod.py", 99, 5, snippet="t = time.time()")
    c = Diagnostic("REP002", "m", "mod.py", 10, 5, snippet="u = time.time()")
    assert a.fingerprint == b.fingerprint
    assert a.fingerprint != c.fingerprint


# ----------------------------------------------------------------------
# self-check: the shipped tree is clean, through both entry points
# ----------------------------------------------------------------------


def test_shipped_tree_is_clean_via_api():
    result = lint_paths([SRC_TREE], root=REPO_ROOT)
    assert [d.render() for d in result.diagnostics] == []
    assert result.files_checked > 70
    assert result.suppressed_pragma > 0  # the documented scheduler pragmas


def test_shipped_tree_is_clean_via_cli():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "--format", "json"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    document = json.loads(proc.stdout)
    assert document["findings"] == []


def test_standalone_module_exits_nonzero_on_violations(tmp_path):
    (tmp_path / "mod.py").write_text(_VIOLATION)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lintkit", str(tmp_path), "--no-baseline"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 1
    assert "REP002" in proc.stdout
