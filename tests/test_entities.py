"""Unit tests for the fleet entities and topology builder."""

from __future__ import annotations

import pytest

from repro.cloud.entities import (
    Node,
    RegionSpec,
    TopologySpec,
    build_topology,
)
from repro.cloud.sku import NodeSku
from repro.telemetry.schema import Cloud


@pytest.fixture()
def node():
    return Node(
        node_id=1, cluster_id=1, rack_id=1, region="r", cloud=Cloud.PRIVATE,
        capacity_cores=16.0, capacity_memory_gb=64.0,
    )


class TestNode:
    def test_host_and_release(self, node):
        node.host(1, 4.0, 16.0)
        assert node.free_cores == 12.0
        assert node.free_memory_gb == 48.0
        node.release(1)
        assert node.free_cores == 16.0
        assert not node.hosted

    def test_cannot_overcommit(self, node):
        node.host(1, 16.0, 16.0)
        assert not node.can_host(0.1, 1.0)
        with pytest.raises(ValueError):
            node.host(2, 1.0, 1.0)

    def test_memory_constraint_independent(self, node):
        assert not node.can_host(1.0, 65.0)

    def test_duplicate_host_rejected(self, node):
        node.host(1, 1.0, 1.0)
        with pytest.raises(ValueError):
            node.host(1, 1.0, 1.0)

    def test_release_unknown_vm_raises(self, node):
        with pytest.raises(KeyError):
            node.release(99)

    def test_to_info(self, node):
        info = node.to_info()
        assert info.node_id == 1
        assert info.capacity_cores == 16.0


def small_spec(**overrides) -> TopologySpec:
    defaults = dict(
        cloud=Cloud.PRIVATE,
        regions=(RegionSpec("a", -5), RegionSpec("b", -8)),
        clusters_per_region=2,
        racks_per_cluster=3,
        nodes_per_rack=4,
        node_sku=NodeSku("test", 32, 128),
    )
    defaults.update(overrides)
    return TopologySpec(**defaults)


class TestBuildTopology:
    def test_counts(self):
        topology = build_topology(small_spec())
        assert len(topology.regions) == 2
        assert len(topology.clusters) == 4
        assert len(topology.nodes) == 4 * 3 * 4
        assert topology.total_capacity_cores == 48 * 32

    def test_ids_unique_across_offset(self):
        a = build_topology(small_spec())
        b = build_topology(small_spec(), id_offset=1_000_000)
        assert not (set(a.nodes) & set(b.nodes))
        assert not (set(a.clusters) & set(b.clusters))

    def test_capacity_factor_scales_clusters(self):
        spec = small_spec(
            regions=(RegionSpec("big", 0, capacity_factor=2.0), RegionSpec("small", 0)),
        )
        topology = build_topology(spec)
        assert len(topology.regions["big"].clusters) == 4
        assert len(topology.regions["small"].clusters) == 2

    def test_cluster_structure(self):
        topology = build_topology(small_spec())
        cluster = topology.regions["a"].clusters[0]
        assert len(cluster.racks) == 3
        assert len(cluster.nodes) == 12
        assert cluster.capacity_cores == 12 * 32
        assert cluster.utilization == 0.0
        # All nodes of a rack share the rack id and cluster id.
        rack = cluster.racks[0]
        assert {n.rack_id for n in rack.nodes} == {rack.rack_id}
        assert {n.cluster_id for n in rack.nodes} == {cluster.cluster_id}

    def test_cluster_utilization_tracks_usage(self):
        topology = build_topology(small_spec())
        cluster = topology.regions["a"].clusters[0]
        node = cluster.nodes[0]
        node.host(1, 32.0, 64.0)
        assert cluster.used_cores == 32.0
        assert cluster.utilization == pytest.approx(32.0 / cluster.capacity_cores)

    def test_region_infos(self):
        topology = build_topology(small_spec())
        info = topology.regions["a"].to_info()
        assert info.tz_offset_hours == -5
        assert topology.region_names() == ["a", "b"]
