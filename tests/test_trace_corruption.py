"""Regression tests: corrupted on-disk traces raise typed errors and heal.

A truncated or torn cache entry used to surface as whatever the parser
tripped over first (``KeyError``, ``EOFError``, ``BadZipFile`` ...).  The
contract now is a single typed :class:`TraceCorruptionError` from
``verify_trace_dir``/``load_trace``, and ``fetch_trace`` treating it as a
miss: evict, re-synthesize, re-save.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.experiments import cache
from repro.experiments.config import clear_trace_cache
from repro.experiments.faultinject import corrupt_trace_dir
from repro.obs import metrics
from repro.telemetry.io import (
    CHECKSUM_FILE,
    TRACE_FILES,
    TraceCorruptionError,
    is_trace_dir,
    load_trace,
    save_trace,
    verify_trace_dir,
)
from repro.telemetry.schema import Cloud, EventKind, EventRecord
from repro.telemetry.store import TraceStore
from repro.workloads.generator import GeneratorConfig
from tests.test_store import make_vm

SMALL = GeneratorConfig(seed=3, scale=0.05)

#: Everything a fresh (format v2) save writes, sidecar excluded.  Both
#: fixture traces are small enough to pack into a single shard.
ALL_FILES = TRACE_FILES + ("utilization/index.json", "utilization/00000.npy")


@pytest.fixture(autouse=True)
def _isolated_memo():
    clear_trace_cache()
    yield
    clear_trace_cache()


@pytest.fixture()
def trace_dir(tmp_path):
    """A freshly saved small trace (VMs, events, telemetry, sidecar)."""
    store = TraceStore()
    store.add_vm(make_vm(1, created_at=0.0, ended_at=3600.0))
    store.add_vm(make_vm(2, cloud=Cloud.PUBLIC, created_at=10.0))
    store.add_event(
        EventRecord(3600.0, EventKind.TERMINATE, 1, Cloud.PRIVATE, "us-east")
    )
    store.add_utilization(
        1, np.linspace(0.1, 0.9, store.metadata.n_samples).astype(np.float32)
    )
    directory = tmp_path / "trace"
    save_trace(store, directory)
    return directory


class TestTypedCorruptionErrors:
    @pytest.mark.parametrize("filename", ALL_FILES)
    def test_truncating_any_file_raises_typed_error(self, trace_dir, filename):
        corrupt_trace_dir(trace_dir, filename)
        with pytest.raises(TraceCorruptionError, match=filename):
            verify_trace_dir(trace_dir)
        with pytest.raises(TraceCorruptionError):
            load_trace(trace_dir)
        # Presence-only probe still says "looks like a trace" ...
        assert is_trace_dir(trace_dir)
        # ... but the integrity-checking probe raises the same typed error.
        with pytest.raises(TraceCorruptionError):
            is_trace_dir(trace_dir, check_integrity=True)

    @pytest.mark.parametrize("filename", TRACE_FILES)
    def test_missing_file_is_not_a_trace_dir(self, trace_dir, filename):
        (trace_dir / filename).unlink()
        assert not is_trace_dir(trace_dir)
        with pytest.raises(TraceCorruptionError, match="missing"):
            load_trace(trace_dir)

    def test_empty_json_document_is_corrupt(self, trace_dir):
        (trace_dir / "metadata.json").write_bytes(b"")
        with pytest.raises(TraceCorruptionError, match="empty"):
            verify_trace_dir(trace_dir)

    def test_unreadable_sidecar_is_corrupt(self, trace_dir):
        (trace_dir / CHECKSUM_FILE).write_text("{not json")
        with pytest.raises(TraceCorruptionError, match=CHECKSUM_FILE):
            verify_trace_dir(trace_dir)

    def test_legacy_trace_without_sidecar_still_loads(self, trace_dir):
        (trace_dir / CHECKSUM_FILE).unlink()
        verify_trace_dir(trace_dir)
        assert len(load_trace(trace_dir)) == 2

    def test_legacy_trace_truncation_caught_by_parser(self, trace_dir):
        """Without a sidecar, parse failure still maps to the typed error."""
        (trace_dir / CHECKSUM_FILE).unlink()
        corrupt_trace_dir(trace_dir, "metadata.json")
        with pytest.raises(TraceCorruptionError):
            load_trace(trace_dir)

    def test_sidecar_records_all_payload_files(self, trace_dir):
        recorded = json.loads((trace_dir / CHECKSUM_FILE).read_text())
        assert recorded["algorithm"] == "sha256"
        assert set(recorded["files"]) == set(ALL_FILES)
        for entry in recorded["files"].values():
            assert set(entry) == {"sha256", "bytes"}


class TestFetchTraceRecovery:
    @pytest.mark.parametrize("filename", ALL_FILES)
    def test_recovers_from_any_corrupted_file(self, tmp_path, filename):
        store, cold = cache.fetch_trace(SMALL, cache_dir=tmp_path)
        corrupt_trace_dir(cold.path, filename)
        before = metrics.REGISTRY.counter_value("cache.corrupt_evicted")

        recovered, info = cache.fetch_trace(SMALL, cache_dir=tmp_path)
        assert info.evicted_corrupt
        assert not info.hit
        assert info.source == "generated"
        assert metrics.REGISTRY.counter_value("cache.corrupt_evicted") == before + 1
        assert recovered.summary() == store.summary()

    def test_recovery_rewrites_a_valid_entry(self, tmp_path):
        _, cold = cache.fetch_trace(SMALL, cache_dir=tmp_path)
        corrupt_trace_dir(cold.path)
        cache.fetch_trace(SMALL, cache_dir=tmp_path)  # evicts + re-saves
        verify_trace_dir(cold.path)
        _, warm = cache.fetch_trace(SMALL, cache_dir=tmp_path)
        assert warm.hit and not warm.evicted_corrupt

    def test_clean_entries_never_report_eviction(self, tmp_path):
        cache.fetch_trace(SMALL, cache_dir=tmp_path)
        before = metrics.REGISTRY.counter_value("cache.corrupt_evicted")
        _, info = cache.fetch_trace(SMALL, cache_dir=tmp_path)
        assert info.hit and not info.evicted_corrupt
        assert metrics.REGISTRY.counter_value("cache.corrupt_evicted") == before
