"""Unit and property tests for the empirical CDF."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.analysis.cdf import EmpiricalCdf

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)
sample_arrays = hnp.arrays(
    dtype=np.float64, shape=st.integers(1, 200), elements=finite_floats
)


def test_simple_cdf_values():
    cdf = EmpiricalCdf.from_samples(np.array([1.0, 2.0, 2.0, 4.0]))
    assert cdf.evaluate(0.5) == 0.0
    assert cdf.evaluate(1.0) == pytest.approx(0.25)
    assert cdf.evaluate(2.0) == pytest.approx(0.75)
    assert cdf.evaluate(3.0) == pytest.approx(0.75)
    assert cdf.evaluate(4.0) == pytest.approx(1.0)
    assert cdf.evaluate(100.0) == pytest.approx(1.0)


def test_quantiles():
    cdf = EmpiricalCdf.from_samples(np.arange(1, 101, dtype=float))
    assert cdf.quantile(0.0) == 1.0
    assert cdf.quantile(0.5) == 50.0
    assert cdf.quantile(1.0) == 100.0
    assert cdf.median == 50.0


def test_quantile_out_of_range_raises():
    cdf = EmpiricalCdf.from_samples(np.array([1.0]))
    with pytest.raises(ValueError):
        cdf.quantile(1.5)
    with pytest.raises(ValueError):
        cdf.quantile(-0.1)


def test_empty_samples_raise():
    with pytest.raises(ValueError):
        EmpiricalCdf.from_samples(np.array([]))


def test_weighted_cdf():
    # Value 1 carries 90% of the weight.
    cdf = EmpiricalCdf.from_samples(
        np.array([1.0, 10.0]), weights=np.array([9.0, 1.0])
    )
    assert cdf.evaluate(1.0) == pytest.approx(0.9)
    assert cdf.evaluate(10.0) == pytest.approx(1.0)


def test_weight_validation():
    with pytest.raises(ValueError):
        EmpiricalCdf.from_samples(np.array([1.0, 2.0]), weights=np.array([1.0]))
    with pytest.raises(ValueError):
        EmpiricalCdf.from_samples(np.array([1.0]), weights=np.array([-1.0]))
    with pytest.raises(ValueError):
        EmpiricalCdf.from_samples(np.array([1.0]), weights=np.array([0.0]))


def test_vectorized_evaluate_matches_scalar():
    cdf = EmpiricalCdf.from_samples(np.array([3.0, 1.0, 2.0]))
    xs = np.array([0.0, 1.5, 2.0, 9.0])
    vec = cdf.evaluate(xs)
    assert list(vec) == [cdf.evaluate(float(x)) for x in xs]


def test_points_are_copies():
    cdf = EmpiricalCdf.from_samples(np.array([1.0, 2.0]))
    xs, ps = cdf.points()
    xs[0] = 99.0
    assert cdf.values[0] == 1.0
    assert ps.shape == xs.shape


@given(sample_arrays)
@settings(max_examples=60)
def test_cdf_is_monotone_and_bounded(samples):
    cdf = EmpiricalCdf.from_samples(samples)
    assert np.all(np.diff(cdf.probabilities) >= -1e-12)
    assert cdf.probabilities[-1] == pytest.approx(1.0)
    assert np.all(cdf.probabilities > 0)
    assert cdf.n_samples == samples.size


@given(sample_arrays)
@settings(max_examples=60)
def test_cdf_values_sorted_unique(samples):
    cdf = EmpiricalCdf.from_samples(samples)
    assert np.all(np.diff(cdf.values) > 0)
    assert set(np.unique(samples)) == set(cdf.values)


@given(sample_arrays, st.floats(min_value=0, max_value=1))
@settings(max_examples=60)
def test_quantile_inverts_evaluate(samples, q):
    cdf = EmpiricalCdf.from_samples(samples)
    value = cdf.quantile(q)
    # Galois connection: P(X <= quantile(q)) >= q.
    assert cdf.evaluate(value) >= q - 1e-12


@given(sample_arrays)
@settings(max_examples=40)
def test_median_between_min_max(samples):
    cdf = EmpiricalCdf.from_samples(samples)
    assert samples.min() <= cdf.median <= samples.max()
