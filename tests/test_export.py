"""Tests for the figure-data CSV exporter."""

from __future__ import annotations

import csv

import numpy as np
import pytest

from repro.analysis.heatmap import build_heatmap
from repro.analysis.stats import BoxplotStats
from repro.analysis.timeseries import percentile_bands
from repro.experiments.base import ExperimentResult
from repro.experiments.export import export_result, export_results


def read_csv(path):
    with path.open() as fh:
        return list(csv.reader(fh))


@pytest.fixture()
def result():
    r = ExperimentResult("demo", "demo experiment")
    r.check("a-check", True, "paper-val", "measured-val")
    r.series["cdf"] = (np.array([1.0, 2.0]), np.array([0.5, 1.0]))
    r.series["counts"] = np.array([3.0, 1.0, 4.0])
    r.series["box"] = BoxplotStats.from_samples(np.arange(10.0))
    r.series["heat"] = build_heatmap(
        np.array([1.0, 2.0]), np.array([1.0, 2.0]), bins=2
    )
    r.series["bands"] = percentile_bands(np.random.default_rng(0).random((5, 4)))
    r.series["by_region"] = {"a": np.zeros(3), "b": np.ones(3)}
    r.series["mix"] = {"diurnal": 0.5, "stable": 0.5}
    r.series["unsupported"] = object()
    return r


def test_export_result_writes_files(result, tmp_path):
    paths = export_result(result, tmp_path)
    names = {p.name for p in paths}
    assert {"cdf.csv", "counts.csv", "box.csv", "heat.csv",
            "bands.csv", "by_region.csv", "mix.csv", "checks.csv"} <= names
    # Unsupported objects are skipped silently.
    assert "unsupported.csv" not in names


def test_cdf_csv_content(result, tmp_path):
    export_result(result, tmp_path)
    rows = read_csv(tmp_path / "demo" / "cdf.csv")
    assert rows[0] == ["value", "probability"]
    assert rows[1] == ["1.0", "0.5"]


def test_checks_csv_content(result, tmp_path):
    export_result(result, tmp_path)
    rows = read_csv(tmp_path / "demo" / "checks.csv")
    assert rows[1][0] == "a-check"
    assert rows[1][1] == "True"


def test_bands_header(result, tmp_path):
    export_result(result, tmp_path)
    rows = read_csv(tmp_path / "demo" / "bands.csv")
    assert rows[0] == ["index", "p25", "p50", "p75", "p95"]
    assert len(rows) == 5  # header + 4 time steps


def test_region_columns(result, tmp_path):
    export_result(result, tmp_path)
    rows = read_csv(tmp_path / "demo" / "by_region.csv")
    assert rows[0] == ["index", "a", "b"]
    assert rows[1][1:] == ["0.0", "1.0"]


def test_heatmap_mass(result, tmp_path):
    export_result(result, tmp_path)
    rows = read_csv(tmp_path / "demo" / "heat.csv")
    densities = [float(r[4]) for r in rows[1:]]
    assert sum(densities) == pytest.approx(1.0)


def test_export_results_multiple(result, tmp_path):
    other = ExperimentResult("other", "t")
    other.series["x"] = np.array([1.0])
    written = export_results([result, other], tmp_path)
    assert set(written) == {"demo", "other"}
    assert (tmp_path / "other" / "x.csv").exists()


def test_real_experiment_exports(small_trace, tmp_path):
    from repro.experiments import fig1

    paths = export_result(fig1.run_fig1a(small_trace), tmp_path)
    assert any(p.name == "private_cdf.csv" for p in paths)
