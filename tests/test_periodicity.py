"""Unit tests for the AUTOPERIOD-style period detector."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.periodicity import (
    autocorrelation,
    autocorrelation_block,
    detect_periods,
    detect_periods_block,
    has_period,
    periodogram_candidates,
    periodogram_candidates_block,
)


def sine(period: int, n: int = 2016, amplitude: float = 1.0) -> np.ndarray:
    t = np.arange(n)
    return amplitude * np.sin(2 * np.pi * t / period)


class TestAutocorrelation:
    def test_lag_zero_is_one(self):
        acf = autocorrelation(np.random.default_rng(0).normal(size=500))
        assert acf[0] == pytest.approx(1.0)

    def test_periodic_signal_has_acf_peak(self):
        acf = autocorrelation(sine(50), max_lag=120)
        assert acf[50] > 0.8
        assert acf[25] < 0.0  # anti-phase

    def test_constant_signal(self):
        acf = autocorrelation(np.ones(100))
        assert np.all(acf == 0)

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            autocorrelation(np.array([1.0]))

    def test_white_noise_decorrelates(self, rng):
        acf = autocorrelation(rng.normal(size=2000), max_lag=50)
        assert np.all(np.abs(acf[1:]) < 0.15)


class TestPeriodogramCandidates:
    def test_finds_dominant_period(self, rng):
        x = sine(48) + 0.1 * rng.normal(size=2016)
        candidates = periodogram_candidates(x, rng=rng)
        periods = [p for p, _power in candidates]
        assert any(abs(p - 48) < 3 for p in periods)

    def test_white_noise_has_few_candidates(self, rng):
        candidates = periodogram_candidates(rng.normal(size=2016), rng=rng)
        assert len(candidates) <= 3

    def test_constant_series_no_candidates(self, rng):
        assert periodogram_candidates(np.ones(256), rng=rng) == []

    def test_too_short_series(self, rng):
        assert periodogram_candidates(np.ones(4), rng=rng) == []


class TestDetectPeriods:
    def test_single_period_detected_and_refined(self, rng):
        x = sine(96) + 0.05 * rng.normal(size=2016)
        periods = detect_periods(x, rng=rng)
        assert periods
        assert abs(periods[0].period_samples - 96) <= 5
        assert periods[0].acf_value > 0.5

    def test_two_periods_detected(self, rng):
        x = sine(288) + 0.7 * sine(12) + 0.05 * rng.normal(size=2016)
        periods = detect_periods(x, rng=rng, max_candidates=16)
        found = {round(p.period_samples) for p in periods}
        assert any(abs(p - 288) <= 10 for p in found)
        assert any(abs(p - 12) <= 2 for p in found)

    def test_noise_yields_nothing(self, rng):
        assert detect_periods(rng.normal(size=1024), rng=rng) == []

    def test_sorted_by_power(self, rng):
        x = sine(288, amplitude=1.0) + sine(12, amplitude=0.3) + 0.02 * rng.normal(size=2016)
        periods = detect_periods(x, rng=rng, max_candidates=16)
        if len(periods) >= 2:
            assert periods[0].power >= periods[1].power


def bitwise_equal(a: np.ndarray, b: np.ndarray) -> bool:
    """Exact equality, with NaN == NaN (there is no looser tolerance here)."""
    a, b = np.asarray(a), np.asarray(b)
    return a.shape == b.shape and bool(np.all((a == b) | (np.isnan(a) & np.isnan(b))))


@pytest.fixture(scope="module")
def mixed_block():
    """Random, periodic, constant and NaN-gap rows of one odd length.

    701 samples exercises rfft's odd-length bin layout; the NaN row models a
    telemetry gap and must poison its own results only.
    """
    rng = np.random.default_rng(99)
    n = 701
    t = np.arange(n, dtype=np.float64)
    gap = 0.4 + 0.1 * np.sin(2 * np.pi * t / 24)
    gap[200:230] = np.nan
    return np.stack(
        [
            rng.normal(size=n),
            np.sin(2 * np.pi * t / 48) + 0.1 * rng.normal(size=n),
            np.sin(2 * np.pi * t / 288) + 0.7 * np.sin(2 * np.pi * t / 12),
            np.full(n, 0.37),
            np.zeros(n),
            gap,
        ]
    )


class TestBatchedBitCompat:
    """The *_block variants must match the scalar path bit for bit."""

    def test_autocorrelation_block(self, mixed_block):
        batched = autocorrelation_block(mixed_block)
        for row, series in enumerate(mixed_block):
            assert bitwise_equal(batched[row], autocorrelation(series)), row

    def test_autocorrelation_block_max_lag(self, mixed_block):
        batched = autocorrelation_block(mixed_block, max_lag=64)
        assert batched.shape == (mixed_block.shape[0], 65)
        for row, series in enumerate(mixed_block):
            assert bitwise_equal(batched[row], autocorrelation(series, max_lag=64))

    def test_autocorrelation_block_rejects_1d(self):
        with pytest.raises(ValueError):
            autocorrelation_block(np.ones(16))

    def test_periodogram_candidates_block(self, mixed_block):
        batched = periodogram_candidates_block(mixed_block)
        for row, series in enumerate(mixed_block):
            # The scalar default is a fresh seed-0 generator per call, which
            # is exactly what the block path replays per row.
            scalar = periodogram_candidates(series, rng=np.random.default_rng(0))
            assert batched[row] == scalar, row

    def test_detect_periods_block(self, mixed_block):
        batched = detect_periods_block(mixed_block)
        for row, series in enumerate(mixed_block):
            scalar = detect_periods(series, rng=np.random.default_rng(0))
            # DetectedPeriod is a frozen dataclass: == is exact float equality.
            assert batched[row] == scalar, row

    def test_detect_periods_block_even_week_length(self, rng):
        t = np.arange(2016, dtype=np.float64)
        block = 0.3 + 0.2 * np.sin(2 * np.pi * t / 288)[None, :]
        block = block + 0.05 * rng.normal(size=(5, 2016))
        block[2] = 0.4
        batched = detect_periods_block(block)
        for row, series in enumerate(block):
            assert batched[row] == detect_periods(series, rng=np.random.default_rng(0))

    def test_single_row_block(self, mixed_block):
        one = mixed_block[1:2]
        assert detect_periods_block(one)[0] == detect_periods(
            one[0], rng=np.random.default_rng(0)
        )

    def test_empty_block(self):
        assert detect_periods_block(np.empty((0, 64))) == []


class TestHasPeriod:
    def test_match_within_tolerance(self, rng):
        x = sine(288) + 0.05 * rng.normal(size=2016)
        assert has_period(x, 288, rng=rng)
        assert has_period(x, 300, tolerance=0.1, rng=rng)
        assert not has_period(x, 12, rng=rng)

    def test_no_period_in_noise(self, rng):
        assert not has_period(rng.normal(size=1024), 24, rng=rng)
