"""Unit tests for the AUTOPERIOD-style period detector."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.periodicity import (
    autocorrelation,
    detect_periods,
    has_period,
    periodogram_candidates,
)


def sine(period: int, n: int = 2016, amplitude: float = 1.0) -> np.ndarray:
    t = np.arange(n)
    return amplitude * np.sin(2 * np.pi * t / period)


class TestAutocorrelation:
    def test_lag_zero_is_one(self):
        acf = autocorrelation(np.random.default_rng(0).normal(size=500))
        assert acf[0] == pytest.approx(1.0)

    def test_periodic_signal_has_acf_peak(self):
        acf = autocorrelation(sine(50), max_lag=120)
        assert acf[50] > 0.8
        assert acf[25] < 0.0  # anti-phase

    def test_constant_signal(self):
        acf = autocorrelation(np.ones(100))
        assert np.all(acf == 0)

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            autocorrelation(np.array([1.0]))

    def test_white_noise_decorrelates(self, rng):
        acf = autocorrelation(rng.normal(size=2000), max_lag=50)
        assert np.all(np.abs(acf[1:]) < 0.15)


class TestPeriodogramCandidates:
    def test_finds_dominant_period(self, rng):
        x = sine(48) + 0.1 * rng.normal(size=2016)
        candidates = periodogram_candidates(x, rng=rng)
        periods = [p for p, _power in candidates]
        assert any(abs(p - 48) < 3 for p in periods)

    def test_white_noise_has_few_candidates(self, rng):
        candidates = periodogram_candidates(rng.normal(size=2016), rng=rng)
        assert len(candidates) <= 3

    def test_constant_series_no_candidates(self, rng):
        assert periodogram_candidates(np.ones(256), rng=rng) == []

    def test_too_short_series(self, rng):
        assert periodogram_candidates(np.ones(4), rng=rng) == []


class TestDetectPeriods:
    def test_single_period_detected_and_refined(self, rng):
        x = sine(96) + 0.05 * rng.normal(size=2016)
        periods = detect_periods(x, rng=rng)
        assert periods
        assert abs(periods[0].period_samples - 96) <= 5
        assert periods[0].acf_value > 0.5

    def test_two_periods_detected(self, rng):
        x = sine(288) + 0.7 * sine(12) + 0.05 * rng.normal(size=2016)
        periods = detect_periods(x, rng=rng, max_candidates=16)
        found = {round(p.period_samples) for p in periods}
        assert any(abs(p - 288) <= 10 for p in found)
        assert any(abs(p - 12) <= 2 for p in found)

    def test_noise_yields_nothing(self, rng):
        assert detect_periods(rng.normal(size=1024), rng=rng) == []

    def test_sorted_by_power(self, rng):
        x = sine(288, amplitude=1.0) + sine(12, amplitude=0.3) + 0.02 * rng.normal(size=2016)
        periods = detect_periods(x, rng=rng, max_candidates=16)
        if len(periods) >= 2:
            assert periods[0].power >= periods[1].power


class TestHasPeriod:
    def test_match_within_tolerance(self, rng):
        x = sine(288) + 0.05 * rng.normal(size=2016)
        assert has_period(x, 288, rng=rng)
        assert has_period(x, 300, tolerance=0.1, rng=rng)
        assert not has_period(x, 12, rng=rng)

    def test_no_period_in_noise(self, rng):
        assert not has_period(rng.normal(size=1024), 24, rng=rng)
