"""Tests for the hourly-peak absorption strategies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.management.peaks import PeakAbsorber, compare_strategies
from repro.timebase import SAMPLES_PER_WEEK, sample_times
from repro.workloads.utilization_models import hourly_peak_signal


@pytest.fixture(scope="module")
def peaky_demand():
    """Aggregate demand with meeting-join peaks exceeding 32-core capacity."""
    times = sample_times(SAMPLES_PER_WEEK)
    signal = hourly_peak_signal(times, tz_offset_hours=0)
    # Scale: base ~20 cores, peaks up to ~44 cores.
    return 20.0 + 35.0 * signal


CAPACITY = 32.0


class TestBaseline:
    def test_baseline_throttles_peaks(self, peaky_demand):
        outcome = PeakAbsorber(peaky_demand, CAPACITY).baseline()
        assert outcome.served_peak_fraction == 0.0
        assert outcome.served_total_fraction < 1.0
        assert outcome.wasted_core_hours == 0.0

    def test_no_excess_demand_serves_everything(self):
        outcome = PeakAbsorber(np.full(288, 10.0), CAPACITY).baseline()
        assert outcome.served_peak_fraction == 1.0
        assert outcome.served_total_fraction == 1.0


class TestPreProvision:
    def test_serves_predicted_peaks(self, peaky_demand):
        absorber = PeakAbsorber(peaky_demand, CAPACITY)
        outcome = absorber.pre_provision()
        # Hourly peaks are perfectly periodic -> prediction works well.
        assert outcome.served_peak_fraction > 0.8
        assert outcome.wasted_core_hours > 0  # reservations idle at night

    def test_zero_standby_is_baseline(self, peaky_demand):
        absorber = PeakAbsorber(peaky_demand, CAPACITY)
        outcome = absorber.pre_provision(standby_cores=0.0)
        assert outcome.served_peak_fraction == 0.0

    def test_short_history_raises(self):
        absorber = PeakAbsorber(np.ones(4), CAPACITY, sample_period=300.0)
        with pytest.raises(ValueError):
            absorber.pre_provision(history_fraction=0.01)


class TestOverclock:
    def test_serves_peaks_within_budget(self, peaky_demand):
        absorber = PeakAbsorber(peaky_demand, CAPACITY)
        outcome = absorber.overclock(boost=0.5, budget_minutes_per_hour=15)
        assert outcome.served_peak_fraction > 0.5
        assert outcome.overclock_minutes > 0
        assert outcome.wasted_core_hours == 0.0

    def test_budget_limits_boost_time(self, peaky_demand):
        absorber = PeakAbsorber(peaky_demand, CAPACITY)
        tight = absorber.overclock(boost=0.5, budget_minutes_per_hour=5)
        loose = absorber.overclock(boost=0.5, budget_minutes_per_hour=30)
        assert tight.overclock_minutes < loose.overclock_minutes
        assert tight.served_peak_fraction <= loose.served_peak_fraction

    def test_boost_size_matters(self, peaky_demand):
        absorber = PeakAbsorber(peaky_demand, CAPACITY)
        small = absorber.overclock(boost=0.05, budget_minutes_per_hour=30)
        large = absorber.overclock(boost=0.6, budget_minutes_per_hour=30)
        assert large.served_peak_fraction > small.served_peak_fraction

    def test_invalid_boost(self, peaky_demand):
        with pytest.raises(ValueError):
            PeakAbsorber(peaky_demand, CAPACITY).overclock(boost=0.0)


class TestCompare:
    def test_both_strategies_beat_baseline(self, peaky_demand):
        outcomes = compare_strategies(peaky_demand, CAPACITY, boost=0.5)
        assert (
            outcomes["pre-provision"].served_peak_fraction
            > outcomes["baseline"].served_peak_fraction
        )
        assert (
            outcomes["overclock"].served_peak_fraction
            > outcomes["baseline"].served_peak_fraction
        )

    def test_tradeoff_shapes(self, peaky_demand):
        """Pre-provisioning wastes capacity; overclocking spends boost time."""
        outcomes = compare_strategies(peaky_demand, CAPACITY, boost=0.5)
        assert outcomes["pre-provision"].wasted_core_hours > 0
        assert outcomes["pre-provision"].overclock_minutes == 0
        assert outcomes["overclock"].wasted_core_hours == 0
        assert outcomes["overclock"].overclock_minutes > 0


class TestValidation:
    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            PeakAbsorber(np.array([]), 10.0)
        with pytest.raises(ValueError):
            PeakAbsorber(np.array([-1.0]), 10.0)
        with pytest.raises(ValueError):
            PeakAbsorber(np.ones(5), 0.0)
