"""Hardening tests: injected faults must degrade the pipeline, not end it.

Every scenario asserts the same contract from a different angle: a task
that raises, hangs, is SIGKILLed, or meets a corrupted cache entry marks
*only itself* ``failed``/``timeout`` (after its retry budget) while the
rest of the registry completes, and the run still produces a complete,
valid, registry-ordered manifest whose ``degraded`` flag and exit code
describe what happened.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import faultinject, parallel
from repro.experiments.cache import fetch_trace
from repro.experiments.config import ExperimentConfig, RetryPolicy, clear_trace_cache
from repro.experiments.faultinject import FaultKind, FaultSpec, parse_faults
from repro.experiments.runner import (
    EXIT_CHECK_FAILURES,
    EXIT_DEGRADED,
    EXIT_OK,
    exit_code_for_manifest,
    run_pipeline,
    validate_manifest,
)
from repro.obs import metrics

CONFIG = ExperimentConfig(seed=7, scale=0.05)

#: A cheap three-task slice of the registry (in registry order).
SUBSET = ["fig1a", "fig2", "fig5"]

#: No-backoff policies keep the suite fast; backoff timing is unit-tested.
FAST = RetryPolicy(retries=0, backoff_s=0.0)
FAST_RETRY = RetryPolicy(retries=2, backoff_s=0.0)


@pytest.fixture(autouse=True)
def _clean_fault_state():
    """Each test starts with no armed faults, no memo, no consumed counts."""
    previous = os.environ.pop(faultinject.ENV_FAULT, None)
    clear_trace_cache()
    faultinject.reset_consumed()
    yield
    os.environ.pop(faultinject.ENV_FAULT, None)
    if previous is not None:
        os.environ[faultinject.ENV_FAULT] = previous
    clear_trace_cache()
    faultinject.reset_consumed()


def arm(plan: str) -> None:
    os.environ[faultinject.ENV_FAULT] = plan


def run_subset(policy: RetryPolicy, *, jobs: int, cache_dir) -> dict:
    outcomes = parallel.execute(
        CONFIG, jobs=jobs, cache_dir=cache_dir, task_ids=SUBSET, policy=policy
    )
    assert [o.task_id for o in outcomes] == SUBSET  # registry order, always
    return {o.task_id: o for o in outcomes}


class TestFaultSpecParsing:
    def test_parse_single_spec(self):
        (spec,) = parse_faults("fig5:raise")
        assert spec == FaultSpec("fig5", FaultKind.RAISE, None)

    def test_parse_aliases(self):
        assert parse_faults("a:crash")[0].kind is FaultKind.RAISE
        assert parse_faults("a:stall")[0].kind is FaultKind.HANG
        assert parse_faults("a:sigkill")[0].kind is FaultKind.KILL

    def test_parse_count_and_multiple_specs(self):
        specs = parse_faults("fig5:raise:2, cache:corrupt; fig2:hang")
        assert [s.render() for s in specs] == [
            "fig5:raise:2",
            "cache:corrupt:1",
            "fig2:hang",
        ]

    def test_corrupt_defaults_to_one_shot(self):
        (spec,) = parse_faults("cache:corrupt")
        assert spec.count == 1

    def test_task_faults_default_to_every_attempt(self):
        (spec,) = parse_faults("fig5:raise")
        assert spec.fires_on(1) and spec.fires_on(99)
        counted = parse_faults("fig5:raise:1")[0]
        assert counted.fires_on(1) and not counted.fires_on(2)

    def test_empty_and_unset_plans(self):
        assert parse_faults(None) == ()
        assert parse_faults("  ") == ()

    @pytest.mark.parametrize("bad", ["fig5", "fig5:explode", "fig5:raise:0", "a:b:c:d"])
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_faults(bad)

    def test_resolve_exact_beats_prefix(self):
        ids = [t.task_id for t in parallel.REGISTRY]
        assert faultinject.resolve_target("fig3a", ids) == "fig3a"
        # "fig3" matches five tasks; the first in registry order wins.
        assert faultinject.resolve_target("fig3", ids) == "fig3a"
        assert faultinject.resolve_target("nope", ids) is None


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(task_timeout_s=0)

    def test_backoff_doubles_and_caps(self):
        policy = RetryPolicy(retries=9, backoff_s=0.5, backoff_max_s=2.0)
        assert policy.max_attempts == 10
        assert [policy.backoff_for(n) for n in (1, 2, 3, 4)] == [0.5, 1.0, 2.0, 2.0]
        assert RetryPolicy(backoff_s=0.0).backoff_for(5) == 0.0


class TestCrashIsolation:
    """One injected failure per mode; the other tasks must complete."""

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_raise_fault_contained(self, tmp_path, jobs):
        arm("fig2:raise")
        outcomes = run_subset(FAST, jobs=jobs, cache_dir=tmp_path)
        assert outcomes["fig2"].status == "failed"
        assert outcomes["fig2"].attempts == FAST.max_attempts
        assert "FaultInjected" in outcomes["fig2"].error
        for other in ("fig1a", "fig5"):
            assert outcomes[other].status == "ok"
            assert outcomes[other].result is not None

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_sigkill_fault_contained(self, tmp_path, jobs):
        arm("fig2:kill")
        outcomes = run_subset(FAST, jobs=jobs, cache_dir=tmp_path)
        assert outcomes["fig2"].status == "failed"
        assert "-9" in outcomes["fig2"].error
        assert outcomes["fig1a"].status == outcomes["fig5"].status == "ok"

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_hang_fault_times_out(self, tmp_path, jobs):
        arm("fig2:hang")
        policy = RetryPolicy(retries=0, task_timeout_s=2.0, backoff_s=0.0)
        outcomes = run_subset(policy, jobs=jobs, cache_dir=tmp_path)
        assert outcomes["fig2"].status == "timeout"
        assert outcomes["fig2"].attempts == 1
        assert "timed out" in outcomes["fig2"].error
        assert outcomes["fig1a"].status == outcomes["fig5"].status == "ok"

    def test_statuses_identical_across_job_counts(self, tmp_path):
        arm("fig2:raise")
        reference = None
        for jobs in (1, 2):
            outcomes = run_subset(FAST_RETRY, jobs=jobs, cache_dir=tmp_path)
            shape = [(o.task_id, o.status, o.attempts) for o in outcomes.values()]
            if reference is None:
                reference = shape
            assert shape == reference


class TestRetries:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_transient_fault_is_retried_to_success(self, tmp_path, jobs):
        arm("fig2:raise:1")  # fires only on attempt 1; attempt 2 succeeds
        before = metrics.REGISTRY.counter_value("retry.attempts")
        outcomes = run_subset(FAST_RETRY, jobs=jobs, cache_dir=tmp_path)
        assert outcomes["fig2"].status == "retried"
        assert outcomes["fig2"].attempts == 2
        assert outcomes["fig2"].result is not None
        assert metrics.REGISTRY.counter_value("retry.attempts") == before + 1

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_persistent_fault_exhausts_attempts(self, tmp_path, jobs):
        arm("fig2:raise")
        before = metrics.REGISTRY.counter_value("retry.attempts")
        outcomes = run_subset(FAST_RETRY, jobs=jobs, cache_dir=tmp_path)
        assert outcomes["fig2"].status == "failed"
        assert outcomes["fig2"].attempts == FAST_RETRY.max_attempts
        # Each failed attempt is listed in the accumulated error.
        for attempt in range(1, FAST_RETRY.max_attempts + 1):
            assert f"attempt {attempt}" in outcomes["fig2"].error
        assert (
            metrics.REGISTRY.counter_value("retry.attempts")
            == before + FAST_RETRY.retries
        )

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_fail_fast_skips_not_yet_started_tasks(self, tmp_path, jobs):
        arm("fig1a:raise")
        policy = RetryPolicy(retries=0, backoff_s=0.0, fail_fast=True)
        outcomes = run_subset(policy, jobs=jobs, cache_dir=tmp_path)
        assert outcomes["fig1a"].status == "failed"
        statuses = {o.status for tid, o in outcomes.items() if tid != "fig1a"}
        # At jobs=2 a sibling may already be in flight when fig1a fails, so
        # it legitimately completes; anything not yet started is skipped.
        assert "skipped" in statuses
        assert statuses <= {"ok", "skipped"}
        for outcome in outcomes.values():
            if outcome.status == "skipped":
                assert outcome.attempts == 0
                assert outcome.result is None


class TestCacheCorruptionFault:
    def test_corrupt_fault_evicts_and_resynthesizes(self, tmp_path):
        gen = CONFIG.generator_config()
        store, cold = fetch_trace(gen, cache_dir=tmp_path)
        assert not cold.hit
        arm("cache:corrupt")
        before = metrics.REGISTRY.counter_value("cache.corrupt_evicted")
        recovered, info = fetch_trace(gen, cache_dir=tmp_path)
        assert info.evicted_corrupt
        assert not info.hit  # the poisoned entry did not count as a hit
        assert metrics.REGISTRY.counter_value("cache.corrupt_evicted") == before + 1
        assert len(recovered) == len(store)

    def test_corrupt_fault_is_one_shot_per_process(self, tmp_path):
        gen = CONFIG.generator_config()
        fetch_trace(gen, cache_dir=tmp_path)
        arm("cache:corrupt")
        _, first = fetch_trace(gen, cache_dir=tmp_path)
        _, second = fetch_trace(gen, cache_dir=tmp_path)
        assert first.evicted_corrupt
        assert second.hit and not second.evicted_corrupt


class TestDegradedManifest:
    """Full-pipeline acceptance: fig3:crash fails exactly one of 19 tasks."""

    @pytest.fixture(scope="class")
    def degraded_report(self, tmp_path_factory):
        cache_dir = tmp_path_factory.mktemp("fault-cache")
        clear_trace_cache()
        run_pipeline(CONFIG, jobs=2, cache_dir=cache_dir)  # warm the cache
        clear_trace_cache()
        os.environ[faultinject.ENV_FAULT] = "fig3:crash"
        try:
            policy = RetryPolicy(retries=1, backoff_s=0.0)
            return run_pipeline(CONFIG, jobs=2, cache_dir=cache_dir, policy=policy)
        finally:
            os.environ.pop(faultinject.ENV_FAULT, None)
            clear_trace_cache()

    def test_exactly_one_task_failed(self, degraded_report):
        rows = {row["id"]: row for row in degraded_report.manifest["experiments"]}
        assert len(rows) == len(parallel.REGISTRY)
        failed = [row for row in rows.values() if row["status"] != "ok"]
        assert [row["id"] for row in failed] == ["fig3a"]  # first "fig3" prefix match
        assert failed[0]["status"] == "failed"
        assert failed[0]["attempts"] == 2  # retries + 1
        assert "FaultInjected" in failed[0]["error"]

    def test_manifest_is_complete_and_ordered(self, degraded_report):
        manifest = degraded_report.manifest
        validate_manifest(manifest)
        assert [row["id"] for row in manifest["experiments"]] == [
            task.task_id for task in parallel.REGISTRY
        ]
        assert manifest["degraded"] is True
        assert manifest["totals"]["degraded"] == 1
        assert manifest["faults"] == ["fig3:raise"]
        assert manifest["policy"]["retries"] == 1
        assert degraded_report.degraded

    def test_other_tasks_produced_results(self, degraded_report):
        completed = {result.experiment_id for result in degraded_report.results}
        assert len(completed) == len(parallel.REGISTRY) - 1
        assert "fig3a" not in completed


class TestExitCodes:
    @staticmethod
    def manifest_with(rows, degraded):
        return {"experiments": rows, "degraded": degraded}

    def test_all_ok_exits_zero(self):
        rows = [{"status": "ok", "passed": True}, {"status": "retried", "passed": True}]
        assert exit_code_for_manifest(self.manifest_with(rows, False)) == EXIT_OK

    def test_degraded_but_complete_exits_three(self):
        rows = [
            {"status": "ok", "passed": True},
            {"status": "failed", "passed": False},
            {"status": "timeout", "passed": False},
        ]
        assert exit_code_for_manifest(self.manifest_with(rows, True)) == EXIT_DEGRADED

    def test_check_failures_outrank_degradation(self):
        rows = [
            {"status": "ok", "passed": False},  # completed but wrong: exit 1
            {"status": "failed", "passed": False},
        ]
        code = exit_code_for_manifest(self.manifest_with(rows, True))
        assert code == EXIT_CHECK_FAILURES


class TestManifestV3Validation:
    @pytest.fixture(scope="class")
    def manifest(self, tmp_path_factory):
        clear_trace_cache()
        report = run_pipeline(
            CONFIG, jobs=1, cache_dir=tmp_path_factory.mktemp("v3-cache")
        )
        clear_trace_cache()
        return report.manifest

    def _copy(self, manifest):
        import json

        return json.loads(json.dumps(manifest))

    def test_clean_run_is_not_degraded(self, manifest):
        validate_manifest(manifest)
        assert manifest["degraded"] is False
        assert manifest["faults"] == []
        assert all(row["status"] == "ok" for row in manifest["experiments"])

    def test_rejects_unknown_status(self, manifest):
        broken = self._copy(manifest)
        broken["experiments"][0]["status"] = "exploded"
        with pytest.raises(ValueError, match="status"):
            validate_manifest(broken)

    def test_rejects_completed_row_with_zero_attempts(self, manifest):
        broken = self._copy(manifest)
        broken["experiments"][0]["attempts"] = 0
        with pytest.raises(ValueError, match="zero attempts"):
            validate_manifest(broken)

    def test_rejects_degraded_flag_mismatch(self, manifest):
        broken = self._copy(manifest)
        broken["degraded"] = True
        with pytest.raises(ValueError, match="degraded"):
            validate_manifest(broken)

    def test_rejects_passed_row_with_degraded_status(self, manifest):
        broken = self._copy(manifest)
        row = next(row for row in broken["experiments"] if row["passed"])
        row["status"] = "failed"
        broken["totals"]["degraded"] = 1
        broken["degraded"] = True
        with pytest.raises(ValueError, match="cannot pass"):
            validate_manifest(broken)
