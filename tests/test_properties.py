"""Property-based invariants for trace serialization and cache keying.

Runs under hypothesis when available, else as a deterministic
stdlib-``random`` sweep (see :mod:`tests.proputil`) -- the asserted
properties are identical either way:

* ``save_trace`` / ``load_trace`` is the identity on stores carrying
  events and utilization (not just VM rows), and always leaves a
  checksum sidecar that verifies;
* ``cache.config_hash`` is a pure function of the config -- equal configs
  collide, different configs (any field) do not, and the literal digest
  for the default config never drifts silently.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.cache import config_hash
from repro.telemetry.io import load_trace, save_trace, verify_trace_dir
from repro.telemetry.schema import Cloud, EventKind, EventRecord
from repro.telemetry.store import TraceStore
from repro.workloads.generator import PlacementPolicy, GeneratorConfig
from tests.proputil import HAVE_HYPOTHESIS, given, seeded_rngs, settings, st
from tests.test_store import make_vm

N_FALLBACK_CASES = 15


def _build_store(rand) -> TraceStore:
    """A small random store with VMs, events, and telemetry.

    ``rand`` only needs ``randint``/``uniform``/``random``/``choice`` --
    satisfied by both ``random.Random`` and the hypothesis draw adapter.
    """
    store = TraceStore()
    n_vms = rand.randint(1, 8)
    for vm_id in range(n_vms):
        created = rand.uniform(0.0, 1000.0)
        censored = rand.random() < 0.4
        store.add_vm(
            make_vm(
                vm_id,
                cloud=rand.choice([Cloud.PRIVATE, Cloud.PUBLIC]),
                cores=float(rand.choice([1, 2, 4, 8])),
                created_at=created,
                ended_at=float("inf") if censored else created + rand.uniform(1.0, 1e5),
            )
        )
        if not censored:
            vm = store.vm(vm_id)
            store.add_event(
                EventRecord(
                    vm.ended_at, EventKind.TERMINATE, vm_id, vm.cloud, vm.region
                )
            )
        if rand.random() < 0.5:
            series = np.linspace(
                rand.random(), rand.random(), store.metadata.n_samples
            ).astype(np.float32)
            store.add_utilization(vm_id, series)
    return store


def _assert_store_round_trip(store: TraceStore, directory) -> None:
    save_trace(store, directory)
    verify_trace_dir(directory)  # the checksum sidecar must self-validate
    loaded = load_trace(directory)
    assert len(loaded) == len(store)
    for vm in store.vms():
        assert loaded.vm(vm.vm_id) == vm
    assert loaded.events() == store.events()
    for vm_id in store.vm_ids_with_utilization():
        np.testing.assert_array_equal(loaded.utilization(vm_id), store.utilization(vm_id))
    assert loaded.summary() == store.summary()


def _random_config(rand) -> GeneratorConfig:
    return GeneratorConfig(
        seed=rand.randint(0, 10_000),
        scale=rand.choice([0.05, 0.1, 0.5, 1.0]),
        duration=rand.choice([86_400.0, 604_800.0]),
        synthesize_utilization=rand.random() < 0.5,
        placement_policy=rand.choice(list(PlacementPolicy)),
        holiday_week=rand.random() < 0.5,
        telemetry_batch=rand.random() < 0.5,
    )


def _assert_hash_properties(config: GeneratorConfig, other: GeneratorConfig) -> None:
    digest = config_hash(config)
    assert isinstance(digest, str) and len(digest) == 20
    int(digest, 16)  # hex, or this raises
    # Pure function: recomputing (fresh but equal instance) is stable.
    assert config_hash(GeneratorConfig(**vars(config).copy())) == digest
    if other == config:
        assert config_hash(other) == digest
    else:
        assert config_hash(other) != digest


if HAVE_HYPOTHESIS:

    class _DrawAdapter:
        """Give hypothesis draws the ``random.Random`` surface the builders use."""

        def __init__(self, data):
            self._data = data

        def randint(self, lo, hi):
            return self._data.draw(st.integers(lo, hi))

        def uniform(self, lo, hi):
            return self._data.draw(
                st.floats(lo, hi, allow_nan=False, allow_infinity=False)
            )

        def random(self):
            return self._data.draw(st.floats(0.0, 1.0, allow_nan=False))

        def choice(self, options):
            return self._data.draw(st.sampled_from(list(options)))

    @given(st.data())
    @settings(max_examples=10, deadline=None)
    def test_property_store_round_trip(tmp_path_factory, data):
        store = _build_store(_DrawAdapter(data))
        _assert_store_round_trip(store, tmp_path_factory.mktemp("prop_store"))

    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_property_config_hash(data):
        adapter = _DrawAdapter(data)
        _assert_hash_properties(_random_config(adapter), _random_config(adapter))

else:

    @pytest.mark.parametrize("case", range(N_FALLBACK_CASES))
    def test_property_store_round_trip(tmp_path_factory, case):
        rng = seeded_rngs(N_FALLBACK_CASES)[case]
        store = _build_store(rng)
        _assert_store_round_trip(store, tmp_path_factory.mktemp("prop_store"))

    @pytest.mark.parametrize("case", range(N_FALLBACK_CASES))
    def test_property_config_hash(case):
        rng = seeded_rngs(N_FALLBACK_CASES, seed=0xCAFE)[case]
        _assert_hash_properties(_random_config(rng), _random_config(rng))


class TestConfigHashAnchors:
    """Non-random guarantees that hold regardless of the test backend."""

    def test_equal_configs_collide(self):
        assert config_hash(GeneratorConfig()) == config_hash(GeneratorConfig())

    @pytest.mark.parametrize(
        "override",
        [
            {"seed": 8},
            {"scale": 0.31},
            {"duration": 3600.0},
            {"synthesize_utilization": False},
            {"placement_policy": PlacementPolicy.BEST_FIT},
            {"holiday_week": True},
            {"telemetry_batch": False},
        ],
    )
    def test_every_field_participates(self, override):
        base = GeneratorConfig()
        changed = GeneratorConfig(**{**vars(base), **override})
        assert config_hash(changed) != config_hash(base)
