"""Integration tests: every paper figure/table reproduces on a shared trace."""

from __future__ import annotations

import pytest

from repro.experiments import case_study, fig1, fig2, fig3, fig4, fig5, fig6, fig7, implications
from repro.experiments.base import CheckResult, ExperimentResult
from repro.experiments.runner import PAPER_ARTIFACTS, render_report, write_experiments_md


@pytest.fixture(scope="module")
def store(medium_trace):
    return medium_trace


def _assert_all_pass(result):
    for check in result.checks:
        assert check.passed, f"{result.experiment_id}: {check.render()}"


def test_fig1a(store):
    _assert_all_pass(fig1.run_fig1a(store))


def test_fig1b(store):
    _assert_all_pass(fig1.run_fig1b(store))


def test_fig2(store):
    _assert_all_pass(fig2.run(store))


def test_fig3a(store):
    _assert_all_pass(fig3.run_fig3a(store))


def test_fig3b(store):
    _assert_all_pass(fig3.run_fig3b(store))


def test_fig3c(store):
    _assert_all_pass(fig3.run_fig3c(store))


def test_fig3d(store):
    _assert_all_pass(fig3.run_fig3d(store))


def test_fig4a(store):
    _assert_all_pass(fig4.run_fig4a(store))


def test_fig4b(store):
    _assert_all_pass(fig4.run_fig4b(store))


def test_fig5(store):
    _assert_all_pass(fig5.run(store, max_vms=500))


def test_fig6(store):
    _assert_all_pass(fig6.run(store, max_vms=800))


def test_fig7a(store):
    _assert_all_pass(fig7.run_fig7a(store))


def test_fig7b(store):
    _assert_all_pass(fig7.run_fig7b(store))


def test_fig7c(store):
    _assert_all_pass(fig7.run_fig7c(store))


def test_im1_oversubscription(store):
    _assert_all_pass(implications.run_oversubscription(store, max_candidates=300))


def test_im2_spot(store):
    _assert_all_pass(implications.run_spot(store))


def test_case_study():
    _assert_all_pass(case_study.run(seed=11))


def test_every_experiment_has_paper_artifact_mapping(store):
    results = []
    results.extend(fig1.run(store))
    results.append(fig2.run(store))
    for result in results:
        assert result.experiment_id in PAPER_ARTIFACTS


class TestHarness:
    def test_check_result_render(self):
        check = CheckResult("name", True, "p", "m")
        assert "PASS" in check.render()
        assert "FAIL" in CheckResult("n", False, "p", "m").render()

    def test_experiment_result_passed(self):
        result = ExperimentResult("x", "t")
        assert result.passed  # vacuous
        result.check("a", True, "p", "m")
        assert result.passed
        result.check("b", False, "p", "m")
        assert not result.passed

    def test_render_report(self, store):
        results = [fig1.run_fig1a(store)]
        report = render_report(results)
        assert "fig1a" in report

    def test_write_experiments_md(self, store, tmp_path):
        results = [fig1.run_fig1a(store), fig2.run(store)]
        path = write_experiments_md(results, tmp_path / "EXP.md")
        text = path.read_text()
        assert "fig1a" in text
        assert "Figure 2" in text
        assert "| Check | Paper | Measured | Status |" in text


def test_fig3c_removals(store):
    _assert_all_pass(fig3.run_fig3c_removals(store))
