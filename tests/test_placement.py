"""Unit/integration tests for the region-shift planner."""

from __future__ import annotations

import pytest

from repro.experiments.case_study import SERVICE_X, build_canada_scenario
from repro.management.placement import RegionShiftPlanner
from repro.telemetry.schema import Cloud


@pytest.fixture(scope="module")
def scenario():
    return build_canada_scenario(seed=11)


@pytest.fixture(scope="module")
def planner(scenario):
    return RegionShiftPlanner(scenario, cloud=Cloud.PRIVATE)


class TestSnapshots:
    def test_canada_a_matches_pilot_start(self, planner):
        snap = planner.snapshot("canada-a")
        assert snap.core_utilization_rate == pytest.approx(0.42, abs=0.02)
        assert snap.underutilized_percentage == pytest.approx(0.23, abs=0.03)

    def test_canada_b_cold(self, planner):
        snap = planner.snapshot("canada-b")
        assert snap.core_utilization_rate < 0.2

    def test_exclusion_counterfactual(self, planner, scenario):
        moved = {
            vm.vm_id
            for vm in scenario.vms(region="canada-a")
            if vm.service == SERVICE_X
        }
        snap = planner.snapshot("canada-a", exclude_vm_ids=moved)
        baseline = planner.snapshot("canada-a")
        assert snap.allocated_cores < baseline.allocated_cores

    def test_extra_cores_counterfactual(self, planner):
        baseline = planner.snapshot("canada-b")
        boosted = planner.snapshot("canada-b", extra_cores=96.0)
        assert boosted.allocated_cores == baseline.allocated_cores + 96.0

    def test_all_snapshots(self, planner):
        snaps = planner.all_snapshots()
        assert set(snaps) == {"canada-a", "canada-b"}


class TestRecommendation:
    def test_recommends_service_x(self, planner):
        recs = planner.recommend(source_region="canada-a", target_region="canada-b")
        services = [r.service for r in recs]
        assert SERVICE_X in services
        rec = next(r for r in recs if r.service == SERVICE_X)
        assert rec.moved_cores == pytest.approx(96.0)
        assert rec.source_region == "canada-a"

    def test_auto_region_selection(self, planner):
        recs = planner.recommend()
        assert recs
        assert recs[0].source_region == "canada-a"
        assert recs[0].target_region == "canada-b"

    def test_evaluate_shift_improves_source(self, planner):
        rec = planner.recommend(
            source_region="canada-a", target_region="canada-b"
        )[0]
        outcome = planner.evaluate_shift(rec)
        before, after = outcome["source_before"], outcome["source_after"]
        assert after.underutilized_percentage < before.underutilized_percentage
        assert after.core_utilization_rate < before.core_utilization_rate
        t_before, t_after = outcome["target_before"], outcome["target_after"]
        assert t_after.allocated_cores > t_before.allocated_cores

    def test_sustainability_targets(self, planner):
        targets = planner.sustainability_targets(top_k=1)
        # Canada-B: high renewable score AND plenty of headroom.
        assert targets == ["canada-b"]


class TestOnGeneratedTrace:
    def test_recommend_runs_on_full_trace(self, medium_trace):
        planner = RegionShiftPlanner(medium_trace, cloud=Cloud.PRIVATE)
        recs = planner.recommend()
        # The private cloud has region-agnostic services; a recommendation
        # should exist (source region auto-picked).
        assert isinstance(recs, list)
        if recs:
            outcome = planner.evaluate_shift(recs[0])
            assert (
                outcome["source_after"].allocated_cores
                <= outcome["source_before"].allocated_cores
            )


class TestApplyShift:
    def test_apply_mutates_trace(self):
        from repro.telemetry.schema import EventKind

        store = build_canada_scenario(seed=11)
        planner = RegionShiftPlanner(store, cloud=Cloud.PRIVATE)
        rec = planner.recommend(
            source_region="canada-a", target_region="canada-b"
        )[0]
        before = planner.snapshot("canada-a")
        n_moved = planner.apply_shift(rec)
        assert n_moved == 12  # all Service-X VMs in Canada-A

        # The store itself changed: re-measuring shows the paper's deltas.
        after = planner.snapshot("canada-a")
        assert after.core_utilization_rate < before.core_utilization_rate
        migrations = store.events(kind=EventKind.MIGRATE)
        assert len(migrations) == n_moved
        assert all("region shift" in e.detail for e in migrations)

        # Moved VMs now live in canada-b on real nodes.
        for event in migrations:
            vm = store.vm(event.vm_id)
            assert vm.region == "canada-b"
            assert store.nodes[vm.node_id].region == "canada-b"

    def test_apply_respects_target_capacity(self):
        store = build_canada_scenario(seed=11)
        planner = RegionShiftPlanner(store, cloud=Cloud.PRIVATE)
        rec = planner.recommend(
            source_region="canada-a", target_region="canada-b"
        )[0]
        planner.apply_shift(rec)
        # Node capacities in the target region are never exceeded.
        used = {}
        for vm in store.vms(region="canada-b"):
            if vm.created_at <= planner.snapshot_time < vm.ended_at:
                used[vm.node_id] = used.get(vm.node_id, 0.0) + vm.cores
        for node_id, cores in used.items():
            assert cores <= store.nodes[node_id].capacity_cores + 1e-9
