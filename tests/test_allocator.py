"""Unit and property tests for the allocation service."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.allocator import AllocationFailure, AllocationService, PlacementPolicy
from repro.cloud.entities import RegionSpec, TopologySpec, build_topology
from repro.cloud.sku import NodeSku
from repro.telemetry.schema import Cloud


def make_service(
    *,
    policy=PlacementPolicy.SPREAD,
    racks=4,
    nodes=3,
    clusters=2,
    regions=("a", "b"),
    node_cores=16.0,
) -> AllocationService:
    spec = TopologySpec(
        cloud=Cloud.PRIVATE,
        regions=tuple(RegionSpec(r, 0) for r in regions),
        clusters_per_region=clusters,
        racks_per_cluster=racks,
        nodes_per_rack=nodes,
        node_sku=NodeSku("t", node_cores, node_cores * 4),
    )
    return AllocationService(build_topology(spec), policy=policy, rng=np.random.default_rng(0))


def test_basic_allocation_and_release():
    service = make_service()
    node = service.allocate(1, 4, 16, region="a", deployment_id=1, subscription_id=1)
    assert node.used_cores == 4
    assert service.node_of(1) is node
    released = service.release(1, deployment_id=1)
    assert released is node
    assert node.used_cores == 0
    assert service.node_of(1) is None


def test_unknown_region_fails():
    service = make_service()
    with pytest.raises(AllocationFailure):
        service.allocate(1, 4, 16, region="nope", deployment_id=1, subscription_id=1)
    assert service.stats.failures == 1


def test_capacity_exhaustion_raises_and_counts():
    service = make_service(racks=1, nodes=1, clusters=1, regions=("a",), node_cores=8)
    service.allocate(1, 8, 32, region="a", deployment_id=1, subscription_id=1)
    with pytest.raises(AllocationFailure):
        service.allocate(2, 1, 4, region="a", deployment_id=1, subscription_id=1)
    assert service.stats.failure_rate == pytest.approx(0.5)
    assert service.stats.failures_by_region["a"] == 1


def test_fault_domain_spreading():
    """SPREAD places a deployment's first VMs on distinct racks."""
    service = make_service(racks=4, nodes=3, clusters=1, regions=("a",))
    for vm_id in range(4):
        service.allocate(vm_id, 2, 8, region="a", deployment_id=7, subscription_id=1)
    assert service.deployment_rack_spread(7) == 4


def test_best_fit_packs_instead_of_spreading():
    service = make_service(policy=PlacementPolicy.BEST_FIT, racks=4, nodes=3, clusters=1, regions=("a",))
    for vm_id in range(4):
        service.allocate(vm_id, 2, 8, region="a", deployment_id=7, subscription_id=1)
    assert service.deployment_rack_spread(7) == 1


def test_random_policy_allocates():
    service = make_service(policy=PlacementPolicy.RANDOM, regions=("a",))
    node = service.allocate(1, 2, 8, region="a", deployment_id=1, subscription_id=1)
    assert node is not None


def test_subscription_cluster_affinity():
    service = make_service(clusters=3, regions=("a",))
    nodes = [
        service.allocate(i, 2, 8, region="a", deployment_id=i, subscription_id=42)
        for i in range(6)
    ]
    assert len({n.cluster_id for n in nodes}) == 1


def test_affinity_overflows_to_other_clusters():
    service = make_service(clusters=2, racks=1, nodes=1, regions=("a",), node_cores=8)
    # Fill the affinity cluster, then overflow.
    a = service.allocate(1, 8, 32, region="a", deployment_id=1, subscription_id=1)
    b = service.allocate(2, 8, 32, region="a", deployment_id=1, subscription_id=1)
    assert a.cluster_id != b.cluster_id


def test_subscriptions_per_cluster_accounting():
    service = make_service(clusters=2, regions=("a",))
    service.allocate(1, 2, 8, region="a", deployment_id=1, subscription_id=1)
    service.allocate(2, 2, 8, region="a", deployment_id=2, subscription_id=2)
    counts = service.subscriptions_per_cluster()
    assert sum(counts.values()) == 2


def test_down_node_not_used():
    service = make_service(racks=1, nodes=2, clusters=1, regions=("a",))
    first = service.allocate(1, 2, 8, region="a", deployment_id=1, subscription_id=1)
    victims = service.mark_node_down(first.node_id)
    assert victims == [1]
    assert service.is_down(first.node_id)
    node = service.allocate(2, 2, 8, region="a", deployment_id=1, subscription_id=1)
    assert node.node_id != first.node_id
    service.mark_node_up(first.node_id)
    assert not service.is_down(first.node_id)


def test_release_decrements_rack_count():
    service = make_service(racks=2, nodes=2, clusters=1, regions=("a",))
    service.allocate(1, 2, 8, region="a", deployment_id=5, subscription_id=1)
    assert service.deployment_rack_spread(5) == 1
    service.release(1, deployment_id=5)
    assert service.deployment_rack_spread(5) == 0


@given(
    st.lists(
        st.tuples(st.sampled_from([1.0, 2.0, 4.0, 8.0]), st.integers(0, 3)),
        min_size=1,
        max_size=80,
    ),
    st.sampled_from(list(PlacementPolicy)),
)
@settings(max_examples=40, deadline=None)
def test_capacity_never_exceeded(requests, policy):
    """Property: no node is ever overcommitted, whatever the policy."""
    service = make_service(policy=policy, racks=2, nodes=2, clusters=1, regions=("a",), node_cores=16)
    for vm_id, (cores, dep) in enumerate(requests):
        try:
            service.allocate(
                vm_id, cores, cores * 4, region="a",
                deployment_id=dep, subscription_id=dep,
            )
        except AllocationFailure:
            pass
    for node in service.topology.nodes.values():
        assert node.used_cores <= node.capacity_cores + 1e-9
        assert node.used_memory_gb <= node.capacity_memory_gb + 1e-9
        booked = sum(c for c, _m in node.hosted.values())
        assert booked == pytest.approx(node.used_cores)


@given(st.lists(st.integers(0, 5), min_size=1, max_size=60))
@settings(max_examples=30, deadline=None)
def test_allocate_release_is_clean(deployments):
    """Property: allocating then releasing everything restores all capacity."""
    service = make_service(regions=("a",))
    placed = []
    for vm_id, dep in enumerate(deployments):
        try:
            service.allocate(vm_id, 2, 8, region="a", deployment_id=dep, subscription_id=dep)
            placed.append((vm_id, dep))
        except AllocationFailure:
            pass
    for vm_id, dep in placed:
        service.release(vm_id, deployment_id=dep)
    for node in service.topology.nodes.values():
        assert node.used_cores == 0
        assert node.used_memory_gb == 0
        assert not node.hosted
