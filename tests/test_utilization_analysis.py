"""Unit/integration tests for the Section IV-A utilization analyses."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import utilization as util
from repro.telemetry.schema import Cloud, PATTERN_DIURNAL, PATTERN_STABLE
from repro.telemetry.store import TraceStore


class TestPatternMixAnalysis:
    def test_fractions_sum_to_one(self, small_trace):
        mix = util.pattern_mix(small_trace, Cloud.PRIVATE, max_vms=120)
        assert sum(mix.as_fractions().values()) == pytest.approx(1.0)

    def test_cloud_mixes_differ_in_documented_direction(self, medium_trace):
        p = util.pattern_mix(medium_trace, Cloud.PRIVATE, max_vms=400).as_fractions()
        q = util.pattern_mix(medium_trace, Cloud.PUBLIC, max_vms=400).as_fractions()
        assert p[PATTERN_DIURNAL] > q[PATTERN_DIURNAL]
        assert q[PATTERN_STABLE] > p[PATTERN_STABLE]


class TestPercentiles:
    def test_weekly_band_shapes(self, small_trace):
        bands = util.weekly_percentiles(small_trace, Cloud.PRIVATE, max_vms=200)
        assert bands.bands.shape[1] == small_trace.metadata.n_samples
        assert np.all(bands.band(25.0) <= bands.band(75.0))

    def test_daily_fold_length(self, small_trace):
        daily = util.daily_percentiles(small_trace, Cloud.PRIVATE, max_vms=200)
        assert daily.bands.shape[1] == 288

    def test_empty_store_raises(self):
        with pytest.raises(ValueError):
            util.weekly_percentiles(TraceStore(), Cloud.PRIVATE)

    def test_p75_under_40_percent(self, small_trace):
        for cloud in (Cloud.PRIVATE, Cloud.PUBLIC):
            bands = util.weekly_percentiles(small_trace, cloud, max_vms=300)
            assert bands.band(75.0).mean() < 0.40

    def test_private_daily_swing_larger(self, medium_trace):
        p = util.daily_percentiles(medium_trace, Cloud.PRIVATE, max_vms=400)
        q = util.daily_percentiles(medium_trace, Cloud.PUBLIC, max_vms=400)
        assert util.daily_range(p, 50.0) > util.daily_range(q, 50.0)


class TestSamplePatternSeries:
    def test_returns_requested_pattern(self, small_trace):
        samples = util.sample_pattern_series(
            small_trace, Cloud.PRIVATE, PATTERN_DIURNAL, n_samples=2
        )
        assert 0 < len(samples) <= 2
        for vm_id, series in samples.items():
            assert small_trace.vm(vm_id).pattern == PATTERN_DIURNAL
            assert series.shape == (small_trace.metadata.n_samples,)

    def test_unknown_pattern_empty(self, small_trace):
        assert util.sample_pattern_series(small_trace, Cloud.PRIVATE, "nope") == {}


def test_daily_range_of_flat_band_is_zero():
    from repro.analysis.timeseries import PercentileBands

    bands = PercentileBands(percentiles=(50.0,), bands=np.ones((1, 288)), n_series=3)
    assert util.daily_range(bands, 50.0) == 0.0
