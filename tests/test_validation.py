"""Tests for the calibration scorecard."""

from __future__ import annotations


from repro.workloads.validation import (
    AnchorResult,
    validate_trace,
)


class TestAnchorResult:
    def test_pass_and_fail(self):
        inside = AnchorResult("a", "p", measured=0.5, lower=0.4, upper=0.6)
        outside = AnchorResult("a", "p", measured=0.7, lower=0.4, upper=0.6)
        assert inside.passed
        assert not outside.passed
        assert "ok" in inside.render()
        assert "OFF" in outside.render()


class TestScorecard:
    def test_default_trace_passes(self, medium_trace):
        scorecard = validate_trace(medium_trace)
        assert len(scorecard.anchors) >= 10
        assert scorecard.passed, scorecard.render()
        assert scorecard.failures == ()

    def test_render(self, medium_trace):
        text = validate_trace(medium_trace).render()
        assert "Calibration scorecard" in text
        assert "Fig. 3a" in text

    def test_without_utilization_anchors(self):
        from repro.workloads.generator import GeneratorConfig, generate_trace_pair

        trace = generate_trace_pair(
            GeneratorConfig(seed=5, scale=0.15, synthesize_utilization=False)
        )
        scorecard = validate_trace(trace, with_utilization_anchors=False)
        names = {a.name for a in scorecard.anchors}
        assert not any("correlation" in n for n in names)
        assert scorecard.passed, scorecard.render()

    def test_detects_broken_profile(self):
        """A profile with inverted lifetime mixes must fail the scorecard."""
        from dataclasses import replace

        from repro.telemetry.store import TraceMetadata, TraceStore
        from repro.workloads.generator import GeneratorConfig, TraceGenerator
        from repro.workloads.lifetime import LifetimeModel
        from repro.workloads.profiles import private_profile, public_profile

        # Swap the clouds' lifetime models: the shortest-bin anchors break.
        broken_private = replace(
            private_profile(), lifetime=LifetimeModel(0.95, 0.04, 0.01)
        )
        config = GeneratorConfig(seed=5, scale=0.15, synthesize_utilization=False)
        private = TraceGenerator(broken_private, config).generate()
        public = TraceGenerator(
            public_profile(), config, entity_offset=1
        ).generate()
        merged = TraceStore(TraceMetadata(label="broken"))
        merged.merge(private)
        merged.merge(public)
        scorecard = validate_trace(merged, with_utilization_anchors=False)
        assert not scorecard.passed
        failed_names = {a.name for a in scorecard.failures}
        assert any("private shortest-bin" in n for n in failed_names)
