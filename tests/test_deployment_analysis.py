"""Unit/integration tests for the Section III deployment analyses."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import deployment as dep
from repro.telemetry.schema import Cloud, EventKind
from repro.telemetry.store import TraceStore
from repro.workloads.lifetime import SHORTEST_BIN_SECONDS


class TestVmsPerSubscription:
    def test_snapshot_semantics(self, small_trace):
        cdf = dep.vms_per_subscription_cdf(small_trace, Cloud.PRIVATE)
        assert cdf.median >= 1

    def test_private_larger_than_public(self, small_trace):
        private = dep.vms_per_subscription_cdf(small_trace, Cloud.PRIVATE)
        public = dep.vms_per_subscription_cdf(small_trace, Cloud.PUBLIC)
        assert private.median > public.median

    def test_empty_cloud_raises(self):
        with pytest.raises(ValueError):
            dep.vms_per_subscription_cdf(TraceStore(), Cloud.PRIVATE)


class TestSubscriptionsPerCluster:
    def test_public_hosts_more(self, small_trace):
        private = dep.subscriptions_per_cluster(small_trace, Cloud.PRIVATE)
        public = dep.subscriptions_per_cluster(small_trace, Cloud.PUBLIC)
        assert public.median > private.median


class TestVmSizeHeatmap:
    def test_mass_and_shape(self, small_trace):
        hm = dep.vm_size_heatmap(small_trace, Cloud.PRIVATE)
        assert hm.total_mass == pytest.approx(1.0, abs=1e-6)

    def test_public_extends_to_corners(self, small_trace):
        private = dep.vm_size_heatmap(small_trace, Cloud.PRIVATE)
        public = dep.vm_size_heatmap(small_trace, Cloud.PUBLIC)
        assert public.corner_mass() > private.corner_mass()


class TestLifetimeCdf:
    def test_only_completed_in_window(self, small_trace):
        cdf = dep.lifetime_cdf(small_trace, Cloud.PUBLIC)
        assert cdf.values.min() > 0
        assert np.isfinite(cdf.values.max())

    def test_shortest_bin_ordering(self, small_trace):
        p = dep.lifetime_cdf(small_trace, Cloud.PRIVATE)
        q = dep.lifetime_cdf(small_trace, Cloud.PUBLIC)
        assert q.evaluate(SHORTEST_BIN_SECONDS) > p.evaluate(SHORTEST_BIN_SECONDS)


class TestCountSeries:
    def test_length_is_hours(self, small_trace):
        counts = dep.vm_count_series(small_trace, Cloud.PRIVATE)
        assert counts.shape == (24 * 7,)
        assert np.all(counts >= 0)

    def test_region_filter(self, small_trace):
        total = dep.vm_count_series(small_trace, Cloud.PUBLIC)
        region = dep.vm_count_series(small_trace, Cloud.PUBLIC, region="us-east")
        assert region.sum() < total.sum()

    def test_creation_series_counts_create_events(self, small_trace):
        creations = dep.vm_creation_series(small_trace, Cloud.PUBLIC)
        n_events = len(small_trace.events(kind=EventKind.CREATE, cloud=Cloud.PUBLIC))
        assert creations.sum() == n_events

    def test_removal_series(self, small_trace):
        removals = dep.vm_creation_series(
            small_trace, Cloud.PUBLIC, kind=EventKind.TERMINATE
        )
        assert removals.sum() > 0


class TestCreationCv:
    def test_per_region_values_finite(self, small_trace):
        cvs = dep.creation_cv_by_region(small_trace, Cloud.PUBLIC)
        assert cvs
        assert all(np.isfinite(v) and v >= 0 for v in cvs.values())

    def test_sparse_regions_skipped(self, small_trace):
        cvs = dep.creation_cv_by_region(small_trace, Cloud.PRIVATE, min_events=10**9)
        assert cvs == {}

    def test_private_burstier(self, medium_trace):
        private = dep.creation_cv_boxplot(medium_trace, Cloud.PRIVATE)
        public = dep.creation_cv_boxplot(medium_trace, Cloud.PUBLIC)
        assert private.median > public.median


class TestRegionsPerSubscription:
    def test_cdf_at_one_majority(self, medium_trace):
        # Needs the larger trace: the private cloud has few subscriptions,
        # so the single-region share is noisy at tiny scales.
        for cloud in (Cloud.PRIVATE, Cloud.PUBLIC):
            cdf = dep.regions_per_subscription_cdf(medium_trace, cloud)
            assert cdf.evaluate(1.0) > 0.5

    def test_core_weighting_changes_shares(self, medium_trace):
        unweighted = dep.regions_per_subscription_cdf(medium_trace, Cloud.PRIVATE)
        weighted = dep.regions_per_subscription_core_weighted(
            medium_trace, Cloud.PRIVATE
        )
        # Multi-region private subscriptions hold more cores, so the weighted
        # single-region share is lower.
        assert weighted.evaluate(1.0) < unweighted.evaluate(1.0)
