"""Unit/integration tests for the workload knowledge base."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.knowledge_base import (
    POLICY_FAILURE_PREDICTION,
    POLICY_OVERSUBSCRIPTION,
    POLICY_REGION_SHIFT,
    POLICY_SPOT_ADOPTION,
    POLICY_VALLEY_FILL,
    SubscriptionKnowledge,
    WorkloadKnowledgeBase,
)
from repro.telemetry.schema import Cloud, PATTERN_DIURNAL, PATTERN_STABLE


@pytest.fixture(scope="module")
def kb(small_trace):
    return WorkloadKnowledgeBase.from_trace(small_trace)


class TestExtraction:
    def test_covers_populated_subscriptions(self, kb, small_trace):
        populated = {vm.subscription_id for vm in small_trace.vms()}
        assert len(kb) == len(populated)

    def test_records_have_basic_fields(self, kb):
        for record in kb.subscriptions()[:20]:
            assert record.n_vms > 0
            assert record.total_cores > 0
            assert record.n_regions >= 1
            assert record.cloud in ("private", "public")

    def test_pattern_mix_normalized(self, kb):
        for record in kb.subscriptions():
            if record.pattern_mix:
                assert sum(record.pattern_mix.values()) == pytest.approx(1.0)

    def test_cloud_filter(self, kb):
        private = kb.subscriptions(cloud=Cloud.PRIVATE)
        public = kb.subscriptions(cloud="public")
        assert private and public
        assert all(r.cloud == "private" for r in private)

    def test_services_counter(self, kb):
        services = kb.services(cloud=Cloud.PRIVATE)
        assert "web-application" in services

    def test_cloud_summary(self, kb):
        summary = kb.cloud_summary(Cloud.PUBLIC)
        assert summary["subscriptions"] > 0
        assert summary["vms"] > 0
        assert 0 <= summary["short_lived_fraction"] <= 1

    def test_cloud_summary_unknown_raises(self):
        with pytest.raises(ValueError):
            WorkloadKnowledgeBase().cloud_summary(Cloud.PRIVATE)

    def test_region_agnostic_candidates_mostly_private(self, kb):
        private = kb.region_agnostic_candidates(cloud=Cloud.PRIVATE)
        assert private


class TestPolicyRecommendation:
    def make_record(self, **overrides) -> SubscriptionKnowledge:
        defaults = dict(
            subscription_id=1,
            cloud="public",
            service="svc",
            party="third",
            n_vms=10,
            total_cores=40.0,
            regions=("a",),
        )
        defaults.update(overrides)
        return SubscriptionKnowledge(**defaults)

    def add(self, record: SubscriptionKnowledge) -> WorkloadKnowledgeBase:
        kb = WorkloadKnowledgeBase()
        kb._records[record.subscription_id] = record
        return kb

    def test_spot_for_short_lived_public(self):
        record = self.make_record(short_lived_fraction=0.9)
        assert POLICY_SPOT_ADOPTION in self.add(record).recommend_policies(1)

    def test_no_spot_for_private(self):
        record = self.make_record(cloud="private", short_lived_fraction=0.9)
        assert POLICY_SPOT_ADOPTION not in self.add(record).recommend_policies(1)

    def test_oversubscription_for_stable(self):
        record = self.make_record(dominant_pattern=PATTERN_STABLE)
        assert POLICY_OVERSUBSCRIPTION in self.add(record).recommend_policies(1)

    def test_valley_fill_for_diurnal(self):
        record = self.make_record(dominant_pattern=PATTERN_DIURNAL)
        assert POLICY_VALLEY_FILL in self.add(record).recommend_policies(1)

    def test_region_shift_for_agnostic_multiregion(self):
        record = self.make_record(regions=("a", "b"), region_agnostic=True)
        assert POLICY_REGION_SHIFT in self.add(record).recommend_policies(1)

    def test_no_region_shift_single_region(self):
        record = self.make_record(regions=("a",), region_agnostic=True)
        assert POLICY_REGION_SHIFT not in self.add(record).recommend_policies(1)

    def test_failure_prediction_for_bursty(self):
        record = self.make_record(creation_cv=4.0)
        assert POLICY_FAILURE_PREDICTION in self.add(record).recommend_policies(1)

    def test_generated_trace_yields_policies(self, kb):
        all_policies = set()
        for record in kb.subscriptions():
            all_policies.update(kb.recommend_policies(record.subscription_id))
        assert POLICY_SPOT_ADOPTION in all_policies
        assert POLICY_OVERSUBSCRIPTION in all_policies
        assert POLICY_VALLEY_FILL in all_policies


class TestPersistence:
    def test_json_round_trip(self, kb, tmp_path):
        path = tmp_path / "kb.json"
        kb.to_json(path)
        restored = WorkloadKnowledgeBase.from_json(path)
        assert len(restored) == len(kb)
        original = kb.subscriptions()[0]
        loaded = restored.get(original.subscription_id)
        assert loaded.service == original.service
        assert loaded.regions == original.regions
        assert loaded.n_vms == original.n_vms

    def test_nan_round_trips_as_null(self, tmp_path):
        kb = WorkloadKnowledgeBase()
        kb._records[1] = SubscriptionKnowledge(
            subscription_id=1, cloud="private", service="s", party="first",
        )
        text = kb.to_json()
        assert "NaN" not in text
        restored = WorkloadKnowledgeBase.from_json(text)
        assert np.isnan(restored.get(1).lifetime_p50)

    def test_from_json_string(self, kb):
        restored = WorkloadKnowledgeBase.from_json(kb.to_json())
        assert len(restored) == len(kb)


class TestDrift:
    def test_identical_snapshots_no_drift(self, kb):
        assert kb.diff(kb) == []

    def test_presence_drift(self, kb):
        empty = WorkloadKnowledgeBase()
        drifts = kb.diff(empty)
        assert len(drifts) == len(kb)
        assert all(d.field == "presence" and d.after == "disappeared" for d in drifts)
        reverse = empty.diff(kb)
        assert all(d.after == "appeared" for d in reverse)

    def test_field_drift_detected(self, kb):
        record = kb.subscriptions()[0]
        newer = WorkloadKnowledgeBase.from_json(kb.to_json())
        changed = newer.get(record.subscription_id)
        changed.dominant_pattern = "irregular" if record.dominant_pattern != "irregular" else "stable"
        changed.regions = changed.regions + ("made-up-region",)
        drifts = kb.diff(newer)
        fields = {d.field for d in drifts if d.subscription_id == record.subscription_id}
        assert "dominant_pattern" in fields
        assert "regions" in fields

    def test_utilization_drift_threshold(self, kb):
        newer = WorkloadKnowledgeBase.from_json(kb.to_json())
        record = next(
            r for r in newer.subscriptions() if np.isfinite(r.mean_utilization)
        )
        record.mean_utilization += 0.5
        drifts = kb.diff(newer)
        assert any(
            d.field == "mean_utilization"
            and d.subscription_id == record.subscription_id
            for d in drifts
        )

    def test_different_workloads_drift(self, small_trace):
        """Two different weeks produce substantial drift."""
        from repro.workloads.generator import GeneratorConfig, generate_trace_pair

        other = generate_trace_pair(GeneratorConfig(seed=99, scale=0.12))
        kb_a = WorkloadKnowledgeBase.from_trace(small_trace)
        kb_b = WorkloadKnowledgeBase.from_trace(other)
        drifts = kb_a.diff(kb_b)
        assert len(drifts) > 10
