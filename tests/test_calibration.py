"""End-to-end calibration: the generator hits the paper's anchors.

These are the quantitative targets from DESIGN.md section 6, asserted on a
medium trace.  Tolerances are wide enough to absorb seed-to-seed variance
but tight enough that the *shape* of each paper finding is guaranteed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import correlation as corr
from repro.core import deployment as dep
from repro.telemetry.schema import Cloud
from repro.workloads.lifetime import SHORTEST_BIN_SECONDS


class TestDeploymentAnchors:
    def test_private_deployments_larger(self, medium_trace):
        private = dep.vms_per_subscription_cdf(medium_trace, Cloud.PRIVATE)
        public = dep.vms_per_subscription_cdf(medium_trace, Cloud.PUBLIC)
        assert private.median > 5 * public.median

    def test_subscriptions_per_cluster_ratio(self, medium_trace):
        """Paper: public clusters host ~20x more subscriptions (median)."""
        private = dep.subscriptions_per_cluster(medium_trace, Cloud.PRIVATE)
        public = dep.subscriptions_per_cluster(medium_trace, Cloud.PUBLIC)
        ratio = public.median / max(1.0, private.median)
        assert 8 <= ratio <= 60

    def test_lifetime_shortest_bins(self, medium_trace):
        """Paper: 49% private vs 81% public in the shortest bin."""
        p = dep.lifetime_cdf(medium_trace, Cloud.PRIVATE).evaluate(SHORTEST_BIN_SECONDS)
        q = dep.lifetime_cdf(medium_trace, Cloud.PUBLIC).evaluate(SHORTEST_BIN_SECONDS)
        assert 0.35 <= p <= 0.62
        assert 0.68 <= q <= 0.92
        assert q - p >= 0.15

    def test_creation_cv_gap(self, medium_trace):
        private = dep.creation_cv_boxplot(medium_trace, Cloud.PRIVATE)
        public = dep.creation_cv_boxplot(medium_trace, Cloud.PUBLIC)
        assert private.median > 1.3 * public.median

    def test_single_region_core_shares(self, medium_trace):
        """Paper: ~40% of private cores vs ~70% of public cores."""
        p = dep.regions_per_subscription_core_weighted(
            medium_trace, Cloud.PRIVATE
        ).evaluate(1.0)
        q = dep.regions_per_subscription_core_weighted(
            medium_trace, Cloud.PUBLIC
        ).evaluate(1.0)
        assert 0.20 <= p <= 0.55
        assert 0.55 <= q <= 0.85

    def test_vm_populations_comparable(self, medium_trace):
        """Section II: similar numbers of VMs in both samples."""
        n_private = len(medium_trace.vms(cloud=Cloud.PRIVATE))
        n_public = len(medium_trace.vms(cloud=Cloud.PUBLIC))
        assert 0.3 <= n_private / n_public <= 3.0


class TestUtilizationAnchors:
    def test_node_correlation_medians(self, medium_trace):
        """Paper: median 0.55 (private) vs 0.02 (public)."""
        private = corr.node_level_correlation(medium_trace, Cloud.PRIVATE)
        public = corr.node_level_correlation(medium_trace, Cloud.PUBLIC)
        assert private.median >= 0.45
        assert public.median <= 0.35
        assert private.median - public.median >= 0.3

    def test_region_correlation_gap(self, medium_trace):
        private = corr.region_level_correlation(medium_trace, Cloud.PRIVATE)
        public = corr.region_level_correlation(medium_trace, Cloud.PUBLIC)
        assert private.median - public.median >= 0.4

    def test_region_agnostic_portion(self, medium_trace):
        reports = corr.region_agnostic_subscriptions(medium_trace, Cloud.PRIVATE)
        share = np.mean([r.region_agnostic for r in reports])
        assert share >= 0.5


class TestStability:
    """The anchors are not one-seed flukes."""

    @pytest.mark.parametrize("seed", [21, 99])
    def test_lifetime_anchor_across_seeds(self, seed):
        from repro.workloads.generator import GeneratorConfig, generate_trace_pair

        trace = generate_trace_pair(
            GeneratorConfig(seed=seed, scale=0.15, synthesize_utilization=False)
        )
        p = dep.lifetime_cdf(trace, Cloud.PRIVATE).evaluate(SHORTEST_BIN_SECONDS)
        q = dep.lifetime_cdf(trace, Cloud.PUBLIC).evaluate(SHORTEST_BIN_SECONDS)
        assert q > p + 0.1
