"""Unit and statistical tests for lifetime models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.timebase import SECONDS_PER_MINUTE
from repro.workloads.lifetime import (
    SHORTEST_BIN_SECONDS,
    LifetimeModel,
    burst_lifetime_model,
    perturbed_model,
    private_lifetime_model,
    public_lifetime_model,
)


def test_weights_must_sum_to_one():
    with pytest.raises(ValueError):
        LifetimeModel(0.5, 0.5, 0.5)
    with pytest.raises(ValueError):
        LifetimeModel(1.2, -0.2, 0.0)


def test_samples_bounded_below(rng):
    model = private_lifetime_model()
    samples = model.sample(rng, 1000)
    assert np.all(samples >= SECONDS_PER_MINUTE)


def test_sample_one(rng):
    assert private_lifetime_model().sample_one(rng) > 0


def test_private_short_fraction_near_049():
    frac = private_lifetime_model().expected_short_fraction()
    assert 0.42 <= frac <= 0.56


def test_public_short_fraction_near_081():
    frac = public_lifetime_model().expected_short_fraction()
    assert 0.76 <= frac <= 0.90


def test_public_shorter_than_private():
    assert (
        public_lifetime_model().expected_short_fraction()
        > private_lifetime_model().expected_short_fraction() + 0.2
    )


def test_burst_model_mostly_long(rng):
    samples = burst_lifetime_model().sample(rng, 2000)
    assert np.mean(samples <= SHORTEST_BIN_SECONDS) < 0.2


def test_pure_component_models(rng):
    short_only = LifetimeModel(1.0, 0.0, 0.0)
    long_only = LifetimeModel(0.0, 0.0, 1.0)
    assert short_only.sample(rng, 500).mean() < long_only.sample(rng, 500).mean()


class TestPerturbedModel:
    def test_weights_valid(self, rng):
        base = public_lifetime_model()
        for _ in range(50):
            model = perturbed_model(base, rng)
            total = model.weight_short + model.weight_medium + model.weight_long
            assert total == pytest.approx(1.0)
            assert model.weight_short >= 0

    def test_mean_preserved(self, rng):
        base = private_lifetime_model()
        shorts = [perturbed_model(base, rng).weight_short for _ in range(800)]
        assert np.mean(shorts) == pytest.approx(base.weight_short, abs=0.03)

    def test_heterogeneity_exists(self, rng):
        base = private_lifetime_model()
        shorts = [perturbed_model(base, rng).weight_short for _ in range(200)]
        assert np.std(shorts) > 0.1

    def test_medium_long_ratio_preserved(self, rng):
        base = private_lifetime_model()
        model = perturbed_model(base, rng)
        expected_ratio = base.weight_medium / base.weight_long
        assert model.weight_medium / model.weight_long == pytest.approx(expected_ratio)

    def test_invalid_concentration(self, rng):
        with pytest.raises(ValueError):
            perturbed_model(private_lifetime_model(), rng, concentration=0)
