"""Tests for the distribution-distance helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.analysis.cdf import EmpiricalCdf
from repro.analysis.distributions import (
    cdf_summary,
    ks_statistic,
    stochastic_dominance_fraction,
    wasserstein_distance,
)

finite = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False)
arrays = hnp.arrays(dtype=np.float64, shape=st.integers(1, 80), elements=finite)


def cdf(samples) -> EmpiricalCdf:
    return EmpiricalCdf.from_samples(np.asarray(samples, dtype=float))


class TestKs:
    def test_identical_is_zero(self):
        a = cdf([1, 2, 3])
        assert ks_statistic(a, a) == 0.0

    def test_disjoint_is_one(self):
        assert ks_statistic(cdf([1, 2]), cdf([10, 20])) == 1.0

    def test_known_value(self):
        # a: mass at {1, 3}; b: mass at {2, 4} -> max gap 0.5.
        assert ks_statistic(cdf([1, 3]), cdf([2, 4])) == pytest.approx(0.5)

    @given(arrays, arrays)
    @settings(max_examples=40)
    def test_bounded_and_symmetric(self, x, y):
        a, b = cdf(x), cdf(y)
        d = ks_statistic(a, b)
        assert 0.0 <= d <= 1.0
        assert d == pytest.approx(ks_statistic(b, a))


class TestWasserstein:
    def test_identical_is_zero(self):
        a = cdf([1, 5, 9])
        assert wasserstein_distance(a, a) == 0.0

    def test_known_shift(self):
        # Point masses at 0 and at 3: distance 3.
        assert wasserstein_distance(cdf([0.0]), cdf([3.0])) == pytest.approx(3.0)

    def test_matches_scipy(self, rng):
        from scipy.stats import wasserstein_distance as scipy_wd

        x = rng.normal(size=200)
        y = rng.normal(loc=1.0, size=150)
        ours = wasserstein_distance(cdf(x), cdf(y))
        assert ours == pytest.approx(scipy_wd(x, y), rel=1e-9)

    @given(arrays, arrays)
    @settings(max_examples=30)
    def test_nonnegative_symmetric(self, x, y):
        a, b = cdf(x), cdf(y)
        d = wasserstein_distance(a, b)
        assert d >= 0.0
        assert d == pytest.approx(wasserstein_distance(b, a))


class TestDominance:
    def test_full_dominance(self):
        small = cdf([1, 2, 3])
        large = cdf([10, 20, 30])
        assert stochastic_dominance_fraction(small, large) == 1.0
        assert stochastic_dominance_fraction(large, small) < 1.0

    def test_paper_lifetime_dominance(self, medium_trace):
        """Fig. 3(a): the public lifetime CDF dominates the private one."""
        from repro.core.deployment import lifetime_cdf
        from repro.telemetry.schema import Cloud

        public = lifetime_cdf(medium_trace, Cloud.PUBLIC)
        private = lifetime_cdf(medium_trace, Cloud.PRIVATE)
        assert stochastic_dominance_fraction(public, private, tolerance=0.02) > 0.95
        assert ks_statistic(public, private) > 0.2


def test_cdf_summary_keys():
    summary = cdf_summary(cdf([1, 2]), cdf([2, 3]))
    assert set(summary) == {"ks", "wasserstein", "dominance_a_over_b"}
