"""Tests for the observability layer: spans, metrics registry, profiling."""

from __future__ import annotations

import pstats

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsScope,
    diff_snapshots,
    drain_spans,
    export_spans,
    mark,
    maybe_profile,
    reset_spans,
    span,
)


@pytest.fixture(autouse=True)
def _clean_spans():
    reset_spans()
    yield
    reset_spans()


class TestSpans:
    def test_nesting_records_parent_and_depth(self):
        with span("outer", kind="test"):
            with span("inner"):
                pass
            with span("sibling"):
                pass
        spans = export_spans()
        by_name = {row["name"]: row for row in spans}
        assert [row["name"] for row in spans] == ["outer", "inner", "sibling"]
        assert by_name["outer"]["parent"] is None
        assert by_name["outer"]["depth"] == 0
        assert by_name["outer"]["attrs"] == {"kind": "test"}
        for child in ("inner", "sibling"):
            assert by_name[child]["parent"] == by_name["outer"]["index"]
            assert by_name[child]["depth"] == 1

    def test_wall_time_measured_and_contains_children(self):
        with span("outer") as outer:
            with span("inner") as inner:
                # Enough work to register on perf_counter.
                sum(range(10_000))
        assert inner.wall_s > 0
        assert outer.wall_s >= inner.wall_s

    def test_record_closed_after_block(self):
        with span("s") as record:
            assert not record.closed
        assert record.closed

    def test_exception_still_closes_span(self):
        with pytest.raises(RuntimeError):
            with span("failing"):
                raise RuntimeError("boom")
        (row,) = export_spans()
        assert row["name"] == "failing"
        assert row["wall_s"] >= 0
        # The stack unwound: a new span starts back at depth 0.
        with span("after"):
            pass
        assert export_spans()[-1]["depth"] == 0

    def test_export_since_rebases_indexes(self):
        with span("before"):
            pass
        bookmark = mark()
        with span("a"):
            with span("b"):
                pass
        exported = export_spans(since=bookmark)
        assert [row["name"] for row in exported] == ["a", "b"]
        assert exported[0]["index"] == 0
        assert exported[0]["parent"] is None
        assert exported[1]["parent"] == 0

    def test_parent_outside_slice_reported_as_none(self):
        with span("outer"):
            bookmark = mark()
            with span("inner"):
                pass
            exported = export_spans(since=bookmark)
        assert exported[0]["name"] == "inner"
        assert exported[0]["parent"] is None
        assert exported[0]["depth"] == 1  # depth is absolute, parent re-based

    def test_drain_removes_spans(self):
        with span("keep"):
            pass
        bookmark = mark()
        with span("drop"):
            pass
        drained = drain_spans(since=bookmark)
        assert [row["name"] for row in drained] == ["drop"]
        assert [row["name"] for row in export_spans()] == ["keep"]

    def test_drain_refuses_open_spans(self):
        bookmark = mark()
        with span("open"):
            with pytest.raises(RuntimeError, match="still open"):
                drain_spans(since=bookmark)


class TestMetricsRegistry:
    def test_counter_handle(self):
        registry = MetricsRegistry()
        counter = Counter("cache.hit", registry=registry)
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2)
        assert counter.value == 3.0
        assert registry.snapshot()["counters"] == {"cache.hit": 3.0}

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        gauge = Gauge("pool.size", registry=registry)
        assert gauge.value is None
        gauge.set(4)
        gauge.set(2)
        assert gauge.value == 2.0

    def test_histogram_buckets(self):
        registry = MetricsRegistry()
        hist = Histogram("latency", bounds=(1.0, 10.0), registry=registry)
        for value in (0.5, 1.0, 5.0, 100.0):
            hist.observe(value)
        snap = registry.snapshot()["histograms"]["latency"]
        assert snap["bounds"] == [1.0, 10.0]
        # bucket i holds values <= bounds[i]; the last bucket is +inf overflow
        assert snap["counts"] == [2, 1, 1]
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(106.5)

    def test_snapshot_keys_sorted(self):
        registry = MetricsRegistry()
        registry.inc("z")
        registry.inc("a")
        assert list(registry.snapshot()["counters"]) == ["a", "z"]

    def test_diff_snapshots_only_changed_series(self):
        registry = MetricsRegistry()
        registry.inc("stable", 5)
        before = registry.snapshot()
        registry.inc("stable", 0)  # no change
        registry.inc("active", 2)
        registry.observe("h", 0.2)
        delta = diff_snapshots(before, registry.snapshot())
        assert delta["counters"] == {"active": 2.0}
        assert delta["histograms"]["h"]["count"] == 1

    def test_merge_is_additive_for_counters_and_histograms(self):
        parent = MetricsRegistry()
        parent.inc("n", 1)
        parent.observe("h", 0.2)
        delta = {
            "counters": {"n": 2.0},
            "gauges": {"g": 7.0},
            "histograms": {
                "h": {
                    "bounds": list(parent.snapshot()["histograms"]["h"]["bounds"]),
                    "counts": [1] + [0] * len(
                        parent.snapshot()["histograms"]["h"]["bounds"]
                    ),
                    "count": 1,
                    "sum": 0.0005,
                }
            },
        }
        parent.merge(delta)
        snap = parent.snapshot()
        assert snap["counters"]["n"] == 3.0
        assert snap["gauges"]["g"] == 7.0
        assert snap["histograms"]["h"]["count"] == 2

    def test_merge_order_determines_gauges(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        deltas = [{"gauges": {"g": 1.0}}, {"gauges": {"g": 2.0}}]
        for delta in deltas:
            a.merge(delta)
        for delta in reversed(deltas):
            b.merge(delta)
        assert a.snapshot()["gauges"]["g"] == 2.0
        assert b.snapshot()["gauges"]["g"] == 1.0

    def test_merge_rejects_mismatched_buckets(self):
        registry = MetricsRegistry()
        registry.observe("h", 1.0, bounds=(1.0, 2.0))
        with pytest.raises(ValueError, match="mismatched buckets"):
            registry.merge(
                {
                    "histograms": {
                        "h": {"bounds": [5.0], "counts": [0, 0], "count": 0, "sum": 0.0}
                    }
                }
            )

    def test_metrics_scope_captures_delta_despite_prior_state(self):
        registry = MetricsRegistry()
        registry.inc("inherited", 100)  # what a forked child would inherit
        with MetricsScope(registry=registry) as scope:
            registry.inc("inherited", 1)
            registry.inc("fresh", 2)
        assert scope.delta["counters"] == {"inherited": 1.0, "fresh": 2.0}

    def test_scope_delta_merges_back_to_equivalent_totals(self):
        serial = MetricsRegistry()
        serial.inc("n", 3)

        parent = MetricsRegistry()
        worker = MetricsRegistry()
        with MetricsScope(registry=worker) as scope:
            worker.inc("n", 3)
        parent.merge(scope.delta)
        assert parent.snapshot() == serial.snapshot()

    def test_reset(self):
        registry = MetricsRegistry()
        registry.inc("n")
        registry.set_gauge("g", 1.0)
        registry.observe("h", 0.1)
        registry.reset()
        snap = registry.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}


class TestProfiling:
    def test_noop_without_path(self):
        with maybe_profile(None) as profiler:
            assert profiler is None

    def test_writes_loadable_pstats(self, tmp_path):
        out = tmp_path / "nested" / "run.pstats"
        with maybe_profile(out) as profiler:
            assert profiler is not None
            sum(range(1000))
        assert out.exists()
        stats = pstats.Stats(str(out))
        assert stats.total_calls >= 1
