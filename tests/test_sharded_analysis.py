"""Cross-backend identity: analyses over mmap'd shards == resident matrices.

The format-v2 acceptance bar is that every analysis reads through the
``TraceStore`` API identically whether the telemetry lives in resident
float32 blocks or in lazily memory-mapped shard files.  These tests run
the paper's hot analyses both ways on the same generated trace and demand
bitwise equality -- not tolerance-based closeness -- since the sharded
backend changes only *where* the bytes live, never their values or the
order they are reduced in.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import correlation as corr
from repro.core import utilization as util
from repro.telemetry.io import load_trace, save_trace
from repro.telemetry.schema import Cloud
from repro.telemetry.shards import ShardRef


@pytest.fixture(scope="module")
def resident_and_sharded(small_trace, tmp_path_factory):
    """The same trace twice: in-memory blocks vs lazily mmap'd v2 shards."""
    directory = tmp_path_factory.mktemp("v2") / "trace"
    save_trace(small_trace, directory)
    sharded = load_trace(directory)
    assert any(isinstance(b, ShardRef) for b in sharded._util_blocks)
    return small_trace, sharded


def test_raw_series_bitwise_equal(resident_and_sharded):
    resident, sharded = resident_and_sharded
    assert resident.vm_ids_with_utilization() == sharded.vm_ids_with_utilization()
    for vm_id in resident.vm_ids_with_utilization()[:50]:
        np.testing.assert_array_equal(
            resident.utilization(vm_id), sharded.utilization(vm_id)
        )


def test_utilization_mean_bitwise_equal(resident_and_sharded):
    resident, sharded = resident_and_sharded
    ids = resident.vm_ids_with_utilization(cloud=Cloud.PRIVATE)
    np.testing.assert_array_equal(
        resident.utilization_mean(ids), sharded.utilization_mean(ids)
    )


def test_weekly_percentiles_bitwise_equal(resident_and_sharded):
    resident, sharded = resident_and_sharded
    for cloud in (Cloud.PRIVATE, Cloud.PUBLIC):
        a = util.weekly_percentiles(resident, cloud, max_vms=300)
        b = util.weekly_percentiles(sharded, cloud, max_vms=300)
        assert a.n_series == b.n_series
        np.testing.assert_array_equal(a.bands, b.bands)


def test_node_level_correlation_bitwise_equal(resident_and_sharded):
    resident, sharded = resident_and_sharded
    a = corr.node_level_correlation(resident, Cloud.PRIVATE, max_nodes=40)
    b = corr.node_level_correlation(sharded, Cloud.PRIVATE, max_nodes=40)
    np.testing.assert_array_equal(a.values, b.values)
    assert a.n_constant_pairs == b.n_constant_pairs


def test_region_level_correlation_bitwise_equal(resident_and_sharded):
    resident, sharded = resident_and_sharded
    a = corr.region_level_correlation(resident, Cloud.PUBLIC)
    b = corr.region_level_correlation(sharded, Cloud.PUBLIC)
    np.testing.assert_array_equal(a.values, b.values)
    assert a.n_constant_pairs == b.n_constant_pairs
