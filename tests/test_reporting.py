"""Tests for the markdown study reporter."""

from __future__ import annotations

import pytest

from repro.core.reporting import study_report_markdown, write_study_report
from repro.core.study import run_study


@pytest.fixture(scope="module")
def study(medium_trace):
    return run_study(medium_trace, max_pattern_vms=250)


def test_markdown_structure(study):
    text = study_report_markdown(study)
    assert text.startswith("# Cloud workload characterization")
    assert "## Headline metrics" in text
    assert "| Metric | Private | Public |" in text
    assert "## The paper's insights, re-evaluated" in text
    assert "## Utilization pattern mix" in text


def test_all_insights_marked_passing(study):
    text = study_report_markdown(study)
    # All four insights hold on the calibrated trace.
    assert text.count("✅") == 4
    assert "❌" not in text


def test_sparklines_with_store(study, medium_trace):
    text = study_report_markdown(study, store=medium_trace)
    assert "## Temporal shapes" in text
    assert "VM count" in text


def test_no_sparklines_without_store(study):
    assert "## Temporal shapes" not in study_report_markdown(study)


def test_write_to_file(study, tmp_path):
    out = write_study_report(study, tmp_path / "report.md")
    assert out.exists()
    assert "Headline metrics" in out.read_text()


def test_study_cli_markdown_flag(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "study.md"
    code = main(["study", "--seed", "3", "--scale", "0.12", "--markdown", str(out)])
    assert code == 0
    assert out.exists()
    assert "markdown report written" in capsys.readouterr().out
