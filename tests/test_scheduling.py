"""Unit tests for the valley scheduler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.management.scheduling import (
    DeferrableJob,
    ValleyScheduler,
    jobs_from_fraction,
)


def diurnal_profile(hours=48, base=20.0, peak=80.0) -> np.ndarray:
    t = np.arange(hours)
    return base + (peak - base) * 0.5 * (1 + np.cos(2 * np.pi * (t - 14) / 24))


class TestDeferrableJob:
    def test_validation(self):
        with pytest.raises(ValueError):
            DeferrableJob(1, cores=8, duration_hours=0, deadline_hour=5)
        with pytest.raises(ValueError):
            DeferrableJob(1, cores=0, duration_hours=1, deadline_hour=5)


class TestValleyScheduler:
    def test_job_lands_in_valley(self):
        profile = diurnal_profile()
        scheduler = ValleyScheduler(profile, capacity_cores=100.0)
        job = DeferrableJob(1, cores=10, duration_hours=2, deadline_hour=48)
        outcome = scheduler.schedule([job])
        assert len(outcome.scheduled) == 1
        start = outcome.scheduled[0].start_hour
        window_load = profile[start : start + 2].mean()
        assert window_load < profile.mean()

    def test_deadline_respected(self):
        profile = diurnal_profile()
        scheduler = ValleyScheduler(profile, capacity_cores=100.0)
        job = DeferrableJob(1, cores=10, duration_hours=4, deadline_hour=6)
        outcome = scheduler.schedule([job])
        assert outcome.scheduled[0].start_hour + 4 <= 6

    def test_impossible_deadline_rejected(self):
        scheduler = ValleyScheduler(np.full(24, 10.0), capacity_cores=100.0)
        job = DeferrableJob(1, cores=5, duration_hours=10, deadline_hour=5)
        outcome = scheduler.schedule([job])
        assert outcome.rejected == (job,)

    def test_capacity_respected(self):
        profile = np.full(24, 90.0)
        scheduler = ValleyScheduler(profile, capacity_cores=100.0)
        jobs = [
            DeferrableJob(i, cores=10, duration_hours=2, deadline_hour=24)
            for i in range(20)
        ]
        outcome = scheduler.schedule(jobs)
        assert np.all(outcome.profile_after <= 100.0 + 1e-9)
        assert outcome.rejected  # cannot fit all 20

    def test_flattens_diurnal_profile(self):
        profile = diurnal_profile()
        scheduler = ValleyScheduler(profile, capacity_cores=100.0)
        jobs = jobs_from_fraction(profile, 100.0, fill_fraction=0.6, job_cores=8.0)
        outcome = scheduler.schedule(jobs)
        assert outcome.peak_to_valley_after < outcome.peak_to_valley_before
        assert outcome.variance_reduction > 0.2

    def test_mass_conserved(self):
        profile = diurnal_profile()
        scheduler = ValleyScheduler(profile, capacity_cores=200.0)
        jobs = [
            DeferrableJob(i, cores=4, duration_hours=3, deadline_hour=48)
            for i in range(10)
        ]
        outcome = scheduler.schedule(jobs)
        added = outcome.profile_after.sum() - outcome.profile_before.sum()
        expected = sum(
            s.job.cores * s.job.duration_hours for s in outcome.scheduled
        )
        assert added == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ValueError):
            ValleyScheduler(np.array([]), 10.0)
        with pytest.raises(ValueError):
            ValleyScheduler(np.ones(5), 0.0)


class TestJobsFromFraction:
    def test_budget_scaling(self, rng):
        profile = diurnal_profile()
        few = jobs_from_fraction(profile, 100.0, fill_fraction=0.1, rng=rng)
        many = jobs_from_fraction(profile, 100.0, fill_fraction=0.9, rng=rng)
        assert len(many) > len(few)

    def test_jobs_valid(self, rng):
        for job in jobs_from_fraction(diurnal_profile(), 100.0, rng=rng):
            assert job.duration_hours >= 1
            assert job.deadline_hour >= job.duration_hours
