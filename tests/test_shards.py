"""Unit tests for the sharded utilization backend (repro.telemetry.shards)."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.telemetry.shards import (
    DEFAULT_SHARD_ROWS,
    ShardMmapCache,
    ShardRef,
    ShardSpiller,
    mmap_cache,
    write_shard,
)


def _rows(n, t, *, seed=0):
    return np.random.default_rng(seed).random((n, t)).astype(np.float32)


class TestShardRef:
    def test_open_returns_mmap_with_expected_shape(self, tmp_path):
        data = _rows(5, 7)
        ref = write_shard(tmp_path / "s.npy", data)
        arr = ref.open()
        assert arr.shape == (5, 7)
        np.testing.assert_array_equal(np.asarray(arr), data)
        assert isinstance(arr, np.memmap)

    def test_shape_mismatch_rejected(self, tmp_path):
        ref = write_shard(tmp_path / "s.npy", _rows(5, 7))
        with pytest.raises(ValueError, match="expected float32"):
            ShardRef(ref.path, 4, 7).open()

    def test_dtype_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.npy"
        np.save(path, np.zeros((2, 3), dtype=np.float64))
        with pytest.raises(ValueError, match="expected float32"):
            ShardRef(path, 2, 3).open()

    def test_pickles_by_path_not_bytes(self, tmp_path):
        data = _rows(64, 64)
        ref = write_shard(tmp_path / "s.npy", data)
        payload = pickle.dumps(ref)
        # The payload carries the path, never the matrix.
        assert len(payload) < data.nbytes
        clone = pickle.loads(payload)
        assert clone.path == ref.path
        np.testing.assert_array_equal(np.asarray(clone.open()), data)

    def test_nbytes(self, tmp_path):
        ref = ShardRef(tmp_path / "x.npy", 3, 5)
        assert ref.nbytes == 3 * 5 * 4


class TestShardMmapCache:
    def test_lru_eviction_bounds_open_mmaps(self, tmp_path):
        cache = ShardMmapCache(capacity=2)
        refs = [write_shard(tmp_path / f"{i}.npy", _rows(2, 3, seed=i)) for i in range(4)]
        for ref in refs:
            cache.get(ref.path, (2, 3))
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0

    def test_get_is_cached(self, tmp_path):
        cache = ShardMmapCache(capacity=2)
        ref = write_shard(tmp_path / "a.npy", _rows(2, 3))
        assert cache.get(ref.path, (2, 3)) is cache.get(ref.path, (2, 3))

    def test_evicted_shard_reopens_with_same_bytes(self, tmp_path):
        cache = ShardMmapCache(capacity=1)
        data = _rows(3, 4)
        ref = write_shard(tmp_path / "a.npy", data)
        other = write_shard(tmp_path / "b.npy", _rows(3, 4, seed=1))
        cache.get(ref.path, (3, 4))
        cache.get(other.path, (3, 4))  # evicts a.npy
        np.testing.assert_array_equal(np.asarray(cache.get(ref.path, (3, 4))), data)

    def test_process_cache_accessor(self):
        assert isinstance(mmap_cache(), ShardMmapCache)


class TestShardSpiller:
    def test_round_trip_matches_dense(self, tmp_path):
        dense = _rows(10, 4)
        spiller = ShardSpiller(tmp_path, 10, 4, shard_rows=4)
        for a, b in spiller.chunk_ranges(0, 10, 3):
            spiller.rows(a, b)[:] = dense[a:b]
            spiller.release_range(a, b)
        refs = spiller.finalize()
        assert [r.n_rows for r in refs] == [4, 4, 2]
        gathered = np.vstack([np.asarray(r.open()) for r in refs])
        np.testing.assert_array_equal(gathered, dense)

    def test_release_range_does_not_truncate(self, tmp_path):
        """Releasing a finished range must never zero already-written rows."""
        dense = _rows(6, 3)
        spiller = ShardSpiller(tmp_path, 6, 3, shard_rows=2)
        spiller.rows(0, 2)[:] = dense[0:2]
        spiller.release_range(0, 2)
        # Writing a later range (and releasing an overlapping one again)
        # must leave the first shard's bytes intact.
        spiller.rows(2, 4)[:] = dense[2:4]
        spiller.release_range(0, 4)
        spiller.rows(4, 6)[:] = dense[4:6]
        refs = spiller.finalize()
        gathered = np.vstack([np.asarray(r.open()) for r in refs])
        np.testing.assert_array_equal(gathered, dense)

    def test_chunk_ranges_never_cross_shards(self, tmp_path):
        spiller = ShardSpiller(tmp_path, 10, 2, shard_rows=4)
        ranges = spiller.chunk_ranges(1, 10, 100)
        assert ranges == [(1, 4), (4, 8), (8, 10)]
        for a, b in ranges:
            assert a // 4 == (b - 1) // 4  # same shard

    def test_rows_rejects_cross_shard_span(self, tmp_path):
        spiller = ShardSpiller(tmp_path, 8, 2, shard_rows=4)
        with pytest.raises(ValueError):
            spiller.rows(2, 6)

    def test_rejects_empty(self, tmp_path):
        with pytest.raises(ValueError):
            ShardSpiller(tmp_path, 0, 4)

    def test_default_shard_rows_sane(self):
        assert DEFAULT_SHARD_ROWS >= 1
