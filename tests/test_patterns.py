"""Unit tests for the four-way pattern classifier."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.patterns import (
    ClassifierConfig,
    PatternClassifier,
    PatternMix,
    classify_block,
    classify_series,
)
from repro.telemetry.schema import (
    Cloud,
    PATTERN_DIURNAL,
    PATTERN_HOURLY_PEAK,
    PATTERN_IRREGULAR,
    PATTERN_STABLE,
)
from repro.timebase import SAMPLES_PER_WEEK, sample_times
from repro.workloads.utilization_models import (
    diurnal_signal,
    hourly_peak_signal,
    irregular_signal,
    stable_signal,
)


@pytest.fixture(scope="module")
def times():
    return sample_times(SAMPLES_PER_WEEK)


@pytest.fixture(scope="module")
def examples(times):
    rng = np.random.default_rng(42)
    return {
        PATTERN_DIURNAL: np.clip(
            0.6 * diurnal_signal(times, tz_offset_hours=-8)
            + rng.normal(0, 0.05, times.size),
            0,
            1,
        ),
        PATTERN_STABLE: np.clip(
            stable_signal(times, level=0.22, rng=rng)
            + rng.normal(0, 0.006, times.size),
            0,
            1,
        ),
        PATTERN_IRREGULAR: np.clip(
            irregular_signal(times, rng=rng) + rng.normal(0, 0.01, times.size), 0, 1
        ),
        PATTERN_HOURLY_PEAK: np.clip(
            0.6 * hourly_peak_signal(times, tz_offset_hours=-8)
            + rng.normal(0, 0.05, times.size),
            0,
            1,
        ),
    }


@pytest.mark.parametrize(
    "pattern",
    [PATTERN_DIURNAL, PATTERN_STABLE, PATTERN_IRREGULAR, PATTERN_HOURLY_PEAK],
)
def test_targeted_backend_classifies_each_pattern(examples, pattern):
    assert classify_series(examples[pattern]) == pattern


@pytest.mark.parametrize(
    "pattern", [PATTERN_DIURNAL, PATTERN_STABLE, PATTERN_IRREGULAR]
)
def test_autoperiod_backend(examples, pattern):
    config = ClassifierConfig(method="autoperiod")
    assert classify_series(examples[pattern], config) == pattern


def test_short_series_is_unclassifiable(examples):
    short = examples[PATTERN_DIURNAL][:100]  # ~8 hours
    assert classify_series(short) == PATTERN_IRREGULAR


def test_stable_threshold_config(examples):
    strict = ClassifierConfig(stable_std_threshold=1e-6)
    # With an absurdly strict threshold, stable is no longer detected.
    assert classify_series(examples[PATTERN_STABLE], strict) != PATTERN_STABLE


def test_noise_robustness(times):
    """Diurnal remains detectable under moderate noise."""
    rng = np.random.default_rng(0)
    signal = 0.5 * diurnal_signal(times, tz_offset_hours=0)
    noisy = np.clip(signal + rng.normal(0, 0.08, times.size), 0, 1)
    assert classify_series(noisy) == PATTERN_DIURNAL


class TestClassifyBlock:
    """classify_block must agree with per-row classify_series exactly."""

    @pytest.fixture(scope="class")
    def block(self, examples, times):
        rng = np.random.default_rng(7)
        gap = np.clip(
            0.6 * diurnal_signal(times, tz_offset_hours=0)
            + rng.normal(0, 0.05, times.size),
            0,
            1,
        )
        gap[500:600] = np.nan  # telemetry gap
        rows = list(examples.values()) + [
            np.full(times.size, 0.3),  # exactly constant (idle VM)
            rng.uniform(0, 1, times.size),  # white noise
            gap,
        ]
        return np.stack(rows)

    def test_matches_scalar_targeted(self, block):
        assert classify_block(block) == [classify_series(row) for row in block]

    def test_matches_scalar_autoperiod(self, block):
        config = ClassifierConfig(method="autoperiod")
        assert classify_block(block, config) == [
            classify_series(row, config) for row in block
        ]

    def test_short_block_all_irregular(self, block):
        short = block[:, :100]
        assert classify_block(short) == [PATTERN_IRREGULAR] * short.shape[0]

    def test_empty_block(self):
        assert classify_block(np.empty((0, 2016))) == []

    def test_rejects_1d(self, block):
        with pytest.raises(ValueError):
            classify_block(block[0])


class TestPatternMix:
    def test_fractions(self):
        mix = PatternMix(counts={PATTERN_DIURNAL: 3, PATTERN_STABLE: 1})
        assert mix.total == 4
        assert mix.fraction(PATTERN_DIURNAL) == 0.75
        assert mix.fraction(PATTERN_HOURLY_PEAK) == 0.0
        fractions = mix.as_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_empty_mix(self):
        mix = PatternMix(counts={})
        assert mix.total == 0
        assert mix.fraction(PATTERN_DIURNAL) == 0.0


class TestClassifyStore:
    def test_classifies_long_lived_vms(self, small_trace):
        classifier = PatternClassifier()
        labels = classifier.classify_store(
            small_trace, cloud=Cloud.PRIVATE, max_vms=50
        )
        assert 0 < len(labels) <= 50
        for vm_id in labels:
            assert small_trace.vm(vm_id).cloud is Cloud.PRIVATE

    def test_subsampling_is_deterministic(self, small_trace):
        classifier = PatternClassifier()
        a = classifier.classify_store(small_trace, cloud=Cloud.PUBLIC, max_vms=30, seed=1)
        b = classifier.classify_store(small_trace, cloud=Cloud.PUBLIC, max_vms=30, seed=1)
        assert a == b

    def test_accuracy_beats_chance(self, small_trace):
        classifier = PatternClassifier()
        accuracy = classifier.accuracy(small_trace, cloud=Cloud.PRIVATE, max_vms=150)
        assert accuracy > 0.6

    def test_accuracy_empty_raises(self):
        from repro.telemetry.store import TraceStore

        classifier = PatternClassifier()
        with pytest.raises(ValueError):
            classifier.accuracy(TraceStore())
