"""Tests for node-health signals and lifetime-aware evacuation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloud.health import (
    NodeHealthMonitor,
    evaluate_policies,
    evaluate_policy,
    sample_failure_schedule,
)
from repro.management.prediction import LifetimePredictor
from repro.telemetry.store import TraceStore
from tests.test_store import make_vm


@pytest.fixture()
def scripted_store():
    """One node with a long-lived VM and a VM about to finish."""
    store = TraceStore()
    store.add_vm(make_vm(1, node_id=5, created_at=0.0, ended_at=float("inf")))
    store.add_vm(make_vm(2, node_id=5, created_at=0.0, ended_at=10_000.0))
    store.add_vm(make_vm(3, node_id=6, created_at=0.0, ended_at=float("inf")))
    return store


@pytest.fixture()
def monitor():
    # Node 5 fails at t=12000; signal fires at t=12000-4000=8000.
    return NodeHealthMonitor(failure_times={5: 12_000.0}, lead_time=4_000.0)


class TestMonitor:
    def test_signal_times(self, monitor):
        assert monitor.signal_time(5) == 8_000.0
        assert monitor.signals() == [(8_000.0, 5)]

    def test_negative_lead_rejected(self):
        with pytest.raises(ValueError):
            NodeHealthMonitor(failure_times={}, lead_time=-1.0)


class TestPolicies:
    def test_migrate_all(self, scripted_store, monitor):
        outcome = evaluate_policy(scripted_store, monitor, policy="migrate-all")
        assert outcome.migrations == 2
        assert outcome.interrupted == 0
        # VM 2 ends at 10000 < failure 12000: migrating it was wasted.
        assert outcome.wasted_migrations == 1

    def test_migrate_none(self, scripted_store, monitor):
        outcome = evaluate_policy(scripted_store, monitor, policy="migrate-none")
        assert outcome.migrations == 0
        # Only VM 1 is still alive at failure time.
        assert outcome.interrupted == 1

    def test_lifetime_aware_with_oracle(self, scripted_store, monitor):
        oracle = {1: float("inf"), 2: 2_000.0}  # VM 2 finishes before failure
        outcome = evaluate_policy(
            scripted_store, monitor, policy="lifetime-aware",
            predicted_remaining=oracle,
        )
        assert outcome.migrations == 1
        assert outcome.interrupted == 0
        assert outcome.wasted_migrations == 0

    def test_lifetime_aware_requires_predictions(self, scripted_store, monitor):
        with pytest.raises(ValueError):
            evaluate_policy(scripted_store, monitor, policy="lifetime-aware")

    def test_unknown_policy(self, scripted_store, monitor):
        with pytest.raises(ValueError):
            evaluate_policy(scripted_store, monitor, policy="nope")

    def test_unknown_vm_treated_as_long(self, scripted_store, monitor):
        outcome = evaluate_policy(
            scripted_store, monitor, policy="lifetime-aware",
            predicted_remaining={},
        )
        assert outcome.migrations == 2  # conservative: move everything


class TestOnGeneratedTrace:
    def test_lifetime_aware_dominates(self, medium_trace):
        """The paper's claim, quantified: prediction cuts migrations without
        losing (much) safety versus migrate-all."""
        rng = np.random.default_rng(3)
        schedule = sample_failure_schedule(medium_trace, n_failures=30, rng=rng)
        monitor = NodeHealthMonitor(failure_times=schedule, lead_time=2 * 3600.0)

        predictor = LifetimePredictor().fit(medium_trace)
        predicted = {}
        for _sig_time, node_id in monitor.signals():
            for vm in medium_trace.vms():
                if vm.node_id != node_id:
                    continue
                predicted[vm.vm_id] = predictor.predict_remaining_time(
                    vm, now=monitor.signal_time(node_id)
                )
        outcomes = evaluate_policies(
            medium_trace, monitor, predicted_remaining=predicted
        )
        assert outcomes["migrate-all"].interrupted == 0
        assert outcomes["migrate-none"].interrupted > 0
        aware = outcomes["lifetime-aware"]
        assert aware.migrations <= outcomes["migrate-all"].migrations
        # Safety must be close to migrate-all (few interruptions).
        assert aware.interrupted <= 0.2 * max(
            1, outcomes["migrate-none"].interrupted
        )

    def test_schedule_sampling(self, small_trace, rng):
        schedule = sample_failure_schedule(small_trace, n_failures=5, rng=rng)
        assert 1 <= len(schedule) <= 5
        duration = small_trace.metadata.duration
        for node_id, time in schedule.items():
            assert node_id in small_trace.nodes
            assert 0 < time < duration
