"""Tests for the declarative registry, parallel executor, and run manifest."""

from __future__ import annotations

import json

import pytest

from repro.experiments import parallel
from repro.experiments.base import ExperimentResult
from repro.experiments.config import ExperimentConfig, clear_trace_cache
from repro.experiments.runner import (
    MANIFEST_SCHEMA_VERSION,
    PAPER_ARTIFACTS,
    load_manifest,
    run_pipeline,
    validate_manifest,
    write_manifest,
)

#: Small but sufficient for every experiment to *execute* (some shape
#: checks legitimately fail at this scale; equality across job counts is
#: what these tests assert).
CONFIG = ExperimentConfig(seed=7, scale=0.05)


@pytest.fixture(autouse=True)
def _isolated_memo():
    clear_trace_cache()
    yield
    clear_trace_cache()


@pytest.fixture(scope="module")
def reports(tmp_path_factory):
    """Serial-cold, jobs=2-warm, and serial-warm pipeline runs, shared cache."""
    clear_trace_cache()
    cache_dir = tmp_path_factory.mktemp("pipeline-cache")
    serial = run_pipeline(CONFIG, jobs=1, cache_dir=cache_dir)
    clear_trace_cache()
    parallel_report = run_pipeline(CONFIG, jobs=2, cache_dir=cache_dir)
    clear_trace_cache()
    serial_warm = run_pipeline(CONFIG, jobs=1, cache_dir=cache_dir)
    return serial, parallel_report, serial_warm


def _comparable(results: list[ExperimentResult]) -> list[dict]:
    return [result.to_dict() for result in results]


class TestRegistry:
    def test_ids_unique_and_complete(self):
        ids = [task.task_id for task in parallel.REGISTRY]
        assert len(ids) == len(set(ids))
        assert set(ids) == set(PAPER_ARTIFACTS)

    def test_paper_artifacts_come_from_registry(self):
        for task in parallel.REGISTRY:
            assert PAPER_ARTIFACTS[task.task_id] == task.paper_artifact

    def test_results_match_task_ids(self, reports):
        serial, _, _ = reports
        for outcome in serial.outcomes:
            assert outcome.result.experiment_id == outcome.task_id

    def test_unknown_task_id_rejected(self):
        with pytest.raises(KeyError, match="no-such-task"):
            parallel.execute(CONFIG, task_ids=["no-such-task"])

    def test_task_subset_runs_in_registry_order(self, tmp_path):
        outcomes = parallel.execute(
            CONFIG, task_ids=["fig2", "fig1a"], cache_dir=tmp_path
        )
        assert [o.task_id for o in outcomes] == ["fig1a", "fig2"]


class TestParallelDeterminism:
    def test_jobs2_equals_serial(self, reports):
        serial, parallel_report, _ = reports
        assert _comparable(serial.results) == _comparable(parallel_report.results)

    def test_manifest_equal_modulo_walltimes(self, reports):
        serial, parallel_report, _ = reports

        def strip(manifest: dict) -> dict:
            stripped = json.loads(json.dumps(manifest))
            stripped["jobs"] = None
            stripped["totals"]["wall_time_s"] = None
            stripped["trace"] = {**stripped["trace"], "hit": None, "source": None}
            # Cold vs warm runs legitimately differ in metrics (miss vs hit
            # counters, synthesis spans); warm-vs-warm equality is asserted
            # separately in test_metrics_equal_across_job_counts.
            stripped["metrics"] = None
            for row in stripped["experiments"]:
                row["wall_time_s"] = None
                row["trace_cache"] = None
            return stripped

        assert strip(serial.manifest) == strip(parallel_report.manifest)

    def test_metrics_equal_across_job_counts(self, reports):
        """Warm jobs=2 and warm jobs=1 runs emit identical metrics modulo timing.

        Worker deltas are merged into the parent registry in registry order,
        so the counters/gauges/histograms (and the span *structure*) must be
        byte-identical between job counts once the trace cache is warm.
        """
        _, parallel_report, serial_warm = reports

        def strip_timings(metrics: dict) -> dict:
            stripped = json.loads(json.dumps(metrics))

            def strip_spans(spans: list[dict]) -> list[dict]:
                for entry in spans:
                    entry["wall_s"] = None
                    entry["peak_rss_delta_kb"] = None
                return spans

            strip_spans(stripped.get("spans", []))
            for task in stripped.get("tasks", {}).values():
                task["wall_time_s"] = None
                task["trace_fetch_s"] = None
                strip_spans(task.get("spans", []))
            return stripped

        assert strip_timings(serial_warm.metrics) == strip_timings(
            parallel_report.metrics
        )


class TestManifest:
    def test_cold_run_records_miss(self, reports):
        serial, _, _ = reports
        assert not serial.trace_info.hit
        assert serial.manifest["trace"]["source"] == "generated"
        rows = {row["id"]: row for row in serial.manifest["experiments"]}
        assert rows["fig1a"]["trace_cache"] == "miss"

    def test_warm_run_skips_synthesis(self, reports):
        _, warm, _ = reports
        assert warm.trace_info.hit
        assert warm.manifest["trace"]["hit"] is True
        assert warm.manifest["trace"]["source"] == "disk"
        for row in warm.manifest["experiments"]:
            expected = "hit" if parallel.TASKS[row["id"]].uses_shared_trace else "n/a"
            assert row["trace_cache"] == expected

    def test_schema_fields(self, reports):
        serial, _, _ = reports
        manifest = serial.manifest
        assert manifest["schema_version"] == MANIFEST_SCHEMA_VERSION
        assert manifest["config"] == {"seed": CONFIG.seed, "scale": CONFIG.scale}
        assert manifest["config_hash"] == CONFIG.config_hash()
        totals = manifest["totals"]
        assert totals["experiments"] == len(parallel.REGISTRY)
        assert totals["passed"] + totals["failed"] == totals["experiments"]
        for row in manifest["experiments"]:
            assert row["paper_artifact"] == PAPER_ARTIFACTS[row["id"]]
            assert row["checks_passed"] <= row["checks_total"]
            assert row["wall_time_s"] >= 0
            assert (row["checks_passed"] == row["checks_total"]) == row["passed"]

    def test_round_trip(self, reports, tmp_path):
        serial, _, _ = reports
        path = write_manifest(serial.manifest, tmp_path / "manifest.json")
        loaded = load_manifest(path)
        assert loaded == json.loads(json.dumps(serial.manifest))

    def test_validate_rejects_missing_keys(self, reports):
        serial, _, _ = reports
        broken = json.loads(json.dumps(serial.manifest))
        del broken["totals"]
        with pytest.raises(ValueError, match="totals"):
            validate_manifest(broken)

    def test_validate_rejects_wrong_schema_version(self, reports):
        serial, _, _ = reports
        broken = json.loads(json.dumps(serial.manifest))
        broken["schema_version"] = 99
        with pytest.raises(ValueError, match="schema_version"):
            validate_manifest(broken)

    def test_validate_rejects_inconsistent_totals(self, reports):
        serial, _, _ = reports
        broken = json.loads(json.dumps(serial.manifest))
        broken["totals"]["passed"] += 1
        with pytest.raises(ValueError, match="inconsistent"):
            validate_manifest(broken)

    def test_validate_rejects_bad_row(self, reports):
        serial, _, _ = reports
        broken = json.loads(json.dumps(serial.manifest))
        del broken["experiments"][0]["wall_time_s"]
        with pytest.raises(ValueError, match="wall_time_s"):
            validate_manifest(broken)


class TestResultSerialization:
    def test_experiment_result_round_trip(self, reports):
        serial, _, _ = reports
        for result in serial.results:
            clone = ExperimentResult.from_dict(result.to_dict())
            assert clone.experiment_id == result.experiment_id
            assert clone.passed == result.passed
            assert [c.render() for c in clone.checks] == [c.render() for c in result.checks]
