"""Shared fixtures: traces are expensive, so they are session-scoped."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.workloads.generator import GeneratorConfig, generate_trace_pair


@pytest.fixture(scope="session", autouse=True)
def _isolated_trace_cache(tmp_path_factory):
    """Point the on-disk trace cache at a session tmp dir.

    Keeps the suite hermetic (no writes to the user's ~/.cache/repro) while
    still letting repeat fetches within one session hit the disk cache.
    """
    root = tmp_path_factory.mktemp("trace-cache")
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(root)
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


@pytest.fixture(scope="session")
def small_trace():
    """A small merged private+public trace for functional tests."""
    return generate_trace_pair(GeneratorConfig(seed=7, scale=0.12))


@pytest.fixture(scope="session")
def medium_trace():
    """A larger trace for statistical/calibration assertions."""
    return generate_trace_pair(GeneratorConfig(seed=7, scale=0.3))


@pytest.fixture()
def rng():
    """A fresh deterministic random generator per test."""
    return np.random.default_rng(1234)
