"""Shared fixtures: traces are expensive, so they are session-scoped."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.generator import GeneratorConfig, generate_trace_pair


@pytest.fixture(scope="session")
def small_trace():
    """A small merged private+public trace for functional tests."""
    return generate_trace_pair(GeneratorConfig(seed=7, scale=0.12))


@pytest.fixture(scope="session")
def medium_trace():
    """A larger trace for statistical/calibration assertions."""
    return generate_trace_pair(GeneratorConfig(seed=7, scale=0.3))


@pytest.fixture()
def rng():
    """A fresh deterministic random generator per test."""
    return np.random.default_rng(1234)
