"""Tests for lintkit v2: ProjectContext, call graph, and REP008-REP012.

Fixture trees exercise each project rule in isolation; the acceptance
tests at the bottom inject real violations into copies of the shipped
sources (a ``time.sleep`` in a serving handler, a mutated
``schema_version`` literal, an op dispatched but undocumented) and
assert the rules catch exactly them.
"""

from __future__ import annotations

import json
import shutil
import subprocess
import sys
from pathlib import Path

from repro.lintkit import lint_paths
from repro.lintkit.project import ProjectContext, _module_name

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_TREE = REPO_ROOT / "src" / "repro"

PROJECT_CODES = ["REP008", "REP009", "REP010", "REP011", "REP012"]


def lint_snippets(tmp_path: Path, files: dict[str, str], **kwargs):
    """Write ``files`` under ``tmp_path`` and lint the tree."""
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return lint_paths([tmp_path], root=tmp_path, **kwargs)


def codes(result) -> list[str]:
    return [diag.code for diag in result.diagnostics]


def messages(result) -> str:
    return "\n".join(diag.message for diag in result.diagnostics)


# ----------------------------------------------------------------------
# ProjectContext plumbing
# ----------------------------------------------------------------------


def test_module_name_strips_src_and_names_packages():
    assert _module_name("src/repro/serving/service.py") == "repro.serving.service"
    assert _module_name("src/repro/serving/__init__.py") == "repro.serving"
    assert _module_name("tools/x.py") == "tools.x"


def test_call_graph_resolves_import_aliasing(tmp_path):
    """``from pkg.util import pause as p`` still colors the edge."""
    result = lint_snippets(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/util.py": (
            "import time\n"
            "def pause():\n"
            "    time.sleep(1)\n"
        ),
        "pkg/app.py": (
            "from pkg.util import pause as p\n"
            "async def serve():\n"
            "    p()\n"
        ),
    }, select=["REP008"])
    assert codes(result) == ["REP008"]
    assert "time.sleep()" in result.diagnostics[0].message
    assert "via pause" in result.diagnostics[0].message
    assert result.diagnostics[0].path.endswith("pkg/util.py")


def test_call_graph_resolves_relative_imports(tmp_path):
    result = lint_snippets(tmp_path, {
        "src/pkg/__init__.py": "",
        "src/pkg/helpers.py": (
            "import subprocess\n"
            "def shell(cmd):\n"
            "    return subprocess.run(cmd)\n"
        ),
        "src/pkg/service.py": (
            "from .helpers import shell\n"
            "async def handler():\n"
            "    shell(['ls'])\n"
        ),
    }, select=["REP008"])
    assert codes(result) == ["REP008"]
    assert "subprocess.run()" in result.diagnostics[0].message


# ----------------------------------------------------------------------
# REP008: blocking calls reachable from async defs
# ----------------------------------------------------------------------


def test_rep008_direct_blocking_call(tmp_path):
    result = lint_snippets(tmp_path, {"mod.py": (
        "import time\n"
        "async def tick():\n"
        "    time.sleep(0.5)\n"
    )}, select=["REP008"])
    assert codes(result) == ["REP008"]
    assert "inside async 'tick'" in result.diagnostics[0].message


def test_rep008_transitive_through_sync_helpers(tmp_path):
    result = lint_snippets(tmp_path, {"mod.py": (
        "import time\n"
        "def inner():\n"
        "    time.sleep(1)\n"
        "def outer():\n"
        "    inner()\n"
        "async def loop():\n"
        "    outer()\n"
    )}, select=["REP008"])
    assert codes(result) == ["REP008"]
    assert "via outer -> inner" in result.diagnostics[0].message


def test_rep008_to_thread_reference_is_clean(tmp_path):
    """Passing the blocking callable as a *reference* never trips."""
    result = lint_snippets(tmp_path, {"mod.py": (
        "import asyncio\n"
        "import time\n"
        "async def tick():\n"
        "    await asyncio.to_thread(time.sleep, 0.5)\n"
    )}, select=["REP008"])
    assert codes(result) == []


def test_rep008_sync_only_blocking_is_clean(tmp_path):
    """Blocking calls not reachable from any async def are fine."""
    result = lint_snippets(tmp_path, {"mod.py": (
        "import time\n"
        "def batch():\n"
        "    time.sleep(1)\n"
    )}, select=["REP008"])
    assert codes(result) == []


def test_rep008_flags_blocking_file_io_methods(tmp_path):
    result = lint_snippets(tmp_path, {"mod.py": (
        "from pathlib import Path\n"
        "async def dump(path: Path, payload: str):\n"
        "    path.write_text(payload)\n"
    )}, select=["REP008"])
    assert codes(result) == ["REP008"]
    assert ".write_text()" in result.diagnostics[0].message


def test_rep008_async_callee_is_its_own_root(tmp_path):
    """An awaited async callee is not traversed from the caller: its own
    root reports the finding exactly once."""
    result = lint_snippets(tmp_path, {"mod.py": (
        "import time\n"
        "async def inner():\n"
        "    time.sleep(1)\n"
        "async def outer():\n"
        "    await inner()\n"
    )}, select=["REP008"])
    assert codes(result) == ["REP008"]
    assert "inside async 'inner'" in result.diagnostics[0].message


# ----------------------------------------------------------------------
# REP009: dropped coroutines / task handles
# ----------------------------------------------------------------------


def test_rep009_unawaited_coroutine(tmp_path):
    result = lint_snippets(tmp_path, {"mod.py": (
        "async def work():\n"
        "    return 1\n"
        "async def main():\n"
        "    work()\n"
    )}, select=["REP009"])
    assert codes(result) == ["REP009"]
    assert "never awaited" in result.diagnostics[0].message


def test_rep009_unawaited_coroutine_across_modules(tmp_path):
    result = lint_snippets(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/jobs.py": "async def flush():\n    return 0\n",
        "pkg/main.py": (
            "from pkg.jobs import flush\n"
            "async def main():\n"
            "    flush()\n"
        ),
    }, select=["REP009"])
    assert codes(result) == ["REP009"]
    assert "flush" in result.diagnostics[0].message


def test_rep009_dropped_create_task_handle(tmp_path):
    result = lint_snippets(tmp_path, {"mod.py": (
        "import asyncio\n"
        "async def work():\n"
        "    return 1\n"
        "async def main():\n"
        "    asyncio.create_task(work())\n"
    )}, select=["REP009"])
    assert codes(result) == ["REP009"]
    assert "task handle" in result.diagnostics[0].message


def test_rep009_kept_handle_and_await_are_clean(tmp_path):
    result = lint_snippets(tmp_path, {"mod.py": (
        "import asyncio\n"
        "async def work():\n"
        "    return 1\n"
        "async def main():\n"
        "    task = asyncio.create_task(work())\n"
        "    await work()\n"
        "    await task\n"
    )}, select=["REP009"])
    assert codes(result) == []


# ----------------------------------------------------------------------
# REP010: state torn across an await
# ----------------------------------------------------------------------


def test_rep010_mutation_straddling_await(tmp_path):
    result = lint_snippets(tmp_path, {"mod.py": (
        "import asyncio\n"
        "class Svc:\n"
        "    async def update(self):\n"
        "        self.host = 'a'\n"
        "        await asyncio.sleep(0)\n"
        "        self.port = 1\n"
    )}, select=["REP010"])
    assert codes(result) == ["REP010"]
    assert "await" in result.diagnostics[0].message


def test_rep010_lock_exempts_section(tmp_path):
    result = lint_snippets(tmp_path, {"mod.py": (
        "import asyncio\n"
        "class Svc:\n"
        "    async def update(self):\n"
        "        async with self._lock:\n"
        "            self.host = 'a'\n"
        "            await asyncio.sleep(0)\n"
        "            self.port = 1\n"
    )}, select=["REP010"])
    assert codes(result) == []


def test_rep010_mutations_between_awaits_are_clean(tmp_path):
    """All mutations grouped after the last await: no torn window."""
    result = lint_snippets(tmp_path, {"mod.py": (
        "import asyncio\n"
        "class Svc:\n"
        "    async def update(self):\n"
        "        await asyncio.sleep(0)\n"
        "        self.host = 'a'\n"
        "        self.port = 1\n"
    )}, select=["REP010"])
    assert codes(result) == []


def test_rep010_mutator_method_counts(tmp_path):
    result = lint_snippets(tmp_path, {"mod.py": (
        "import asyncio\n"
        "class Svc:\n"
        "    async def update(self):\n"
        "        self.pending.append(1)\n"
        "        await asyncio.sleep(0)\n"
        "        self.done.add(1)\n"
    )}, select=["REP010"])
    assert codes(result) == ["REP010"]


def test_rep010_branchy_flow_merges_state(tmp_path):
    """A mutation inside one branch still tears with a later await+store."""
    result = lint_snippets(tmp_path, {"mod.py": (
        "import asyncio\n"
        "class Svc:\n"
        "    async def update(self, flag):\n"
        "        if flag:\n"
        "            self.host = 'a'\n"
        "        await asyncio.sleep(0)\n"
        "        self.port = 1\n"
    )}, select=["REP010"])
    assert codes(result) == ["REP010"]


# ----------------------------------------------------------------------
# REP011: wire-protocol drift
# ----------------------------------------------------------------------

_SERVICE_FIXTURE = (
    "class Svc:\n"
    "    def __init__(self):\n"
    "        self._handlers = {\n"
    "            'ping': self._op_ping,\n"
    "            'stats': self._op_stats,\n"
    "        }\n"
    "    def _op_ping(self, payload):\n"
    "        return {}\n"
    "    def _op_stats(self, payload):\n"
    "        return {}\n"
)

_SERVING_DOC = (
    "# Serving\n\n"
    "| op | payload | reply |\n"
    "| --- | --- | --- |\n"
    "| `ping` | `{}` | `{}` |\n"
    "| `stats` | `{}` | `{}` |\n"
)


def test_rep011_agreeing_table_is_clean(tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "SERVING.md").write_text(_SERVING_DOC)
    result = lint_snippets(tmp_path, {"svc.py": _SERVICE_FIXTURE},
                           select=["REP011"])
    assert codes(result) == []


def test_rep011_dead_handler_method(tmp_path):
    source = _SERVICE_FIXTURE + "    def _op_flush(self, payload):\n        return {}\n"
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "SERVING.md").write_text(_SERVING_DOC)
    result = lint_snippets(tmp_path, {"svc.py": source}, select=["REP011"])
    assert codes(result) == ["REP011"]
    assert "dead op" in result.diagnostics[0].message
    # Anchored at the method definition itself.
    assert result.diagnostics[0].line == _SERVICE_FIXTURE.count("\n") + 1


def test_rep011_documented_but_not_dispatched(tmp_path):
    doc = _SERVING_DOC + "| `flush` | `{}` | `{}` |\n"
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "SERVING.md").write_text(doc)
    result = lint_snippets(tmp_path, {"svc.py": _SERVICE_FIXTURE},
                           select=["REP011"])
    assert codes(result) == ["REP011"]
    assert "does not dispatch" in result.diagnostics[0].message


def test_rep011_client_literal_unknown_op(tmp_path):
    client = (
        "async def probe(client):\n"
        "    return await client.call('flsuh')\n"
    )
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "SERVING.md").write_text(_SERVING_DOC)
    result = lint_snippets(
        tmp_path, {"svc.py": _SERVICE_FIXTURE, "client.py": client},
        select=["REP011"],
    )
    assert codes(result) == ["REP011"]
    assert "'flsuh'" in result.diagnostics[0].message


def test_rep011_no_docs_skips_doc_legs(tmp_path):
    """Fixture trees without docs/SERVING.md only check code-side drift."""
    result = lint_snippets(tmp_path, {"svc.py": _SERVICE_FIXTURE},
                           select=["REP011"])
    assert codes(result) == []


# ----------------------------------------------------------------------
# REP012: version-literal drift
# ----------------------------------------------------------------------


def _bench_fixture(version: int) -> dict[str, str]:
    return {
        "src/pkg/experiments/benchperf.py": f"SCHEMA_VERSION = {version}\n",
    }


def test_rep012_matching_artifact_is_clean(tmp_path):
    (tmp_path / "BENCH_perf.json").write_text(
        json.dumps({"schema_version": 1}) + "\n"
    )
    result = lint_snippets(tmp_path, _bench_fixture(1), select=["REP012"])
    assert codes(result) == []


def test_rep012_flags_drifted_artifact(tmp_path):
    (tmp_path / "BENCH_perf.json").write_text(
        json.dumps({"schema_version": 1}) + "\n"
    )
    result = lint_snippets(tmp_path, _bench_fixture(2), select=["REP012"])
    assert codes(result) == ["REP012"]
    assert "SCHEMA_VERSION = 2" in result.diagnostics[0].message
    assert "records schema_version 1" in result.diagnostics[0].message


def test_rep012_flags_artifact_without_version(tmp_path):
    (tmp_path / "BENCH_perf.json").write_text(json.dumps({"bench": "perf"}) + "\n")
    result = lint_snippets(tmp_path, _bench_fixture(1), select=["REP012"])
    assert codes(result) == ["REP012"]
    assert "no schema_version" in result.diagnostics[0].message


def test_rep012_missing_artifact_skips(tmp_path):
    result = lint_snippets(tmp_path, _bench_fixture(7), select=["REP012"])
    assert codes(result) == []


def test_rep012_doc_contract(tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "PIPELINE.md").write_text(
        'The manifest starts with "schema_version": 3 and\n'
        '"generator_version": "1".\n'
    )
    result = lint_snippets(tmp_path, {
        "src/pkg/workloads/generator.py": "GENERATOR_VERSION = '2'\n",
        "src/pkg/experiments/runner.py": "MANIFEST_SCHEMA_VERSION = 3\n",
    }, select=["REP012"])
    assert codes(result) == ["REP012"]
    assert "GENERATOR_VERSION" in result.diagnostics[0].message


# ----------------------------------------------------------------------
# Injected-violation acceptance tests against the real sources
# ----------------------------------------------------------------------


def _copy_real_service(tmp_path: Path) -> Path:
    target = tmp_path / "src" / "repro" / "serving" / "service.py"
    target.parent.mkdir(parents=True)
    shutil.copy(SRC_TREE / "serving" / "service.py", target)
    docs = tmp_path / "docs"
    docs.mkdir()
    shutil.copy(REPO_ROOT / "docs" / "SERVING.md", docs / "SERVING.md")
    return target


def test_acceptance_shipped_service_copy_is_clean(tmp_path):
    _copy_real_service(tmp_path)
    result = lint_paths([tmp_path], root=tmp_path, select=PROJECT_CODES)
    assert codes(result) == []


def test_acceptance_injected_sleep_in_serving_handler(tmp_path):
    """A time.sleep in the sync batch-apply path is caught transitively."""
    target = _copy_real_service(tmp_path)
    source = target.read_text()
    assert "import asyncio" in source and "        applied = 0\n" in source
    source = source.replace("import asyncio", "import asyncio\nimport time", 1)
    source = source.replace(
        "        applied = 0\n", "        applied = 0\n        time.sleep(0.01)\n", 1
    )
    target.write_text(source)
    result = lint_paths([tmp_path], root=tmp_path, select=["REP008"])
    assert codes(result) == ["REP008"]
    assert "time.sleep()" in result.diagnostics[0].message
    assert "reachable from async" in result.diagnostics[0].message
    assert "apply_records" in result.diagnostics[0].message


def test_acceptance_injected_undocumented_op(tmp_path):
    """An op wired into _handlers but absent from docs/SERVING.md."""
    target = _copy_real_service(tmp_path)
    source = target.read_text()
    marker = '            "ping": self._op_ping,\n'
    assert marker in source
    target.write_text(source.replace(
        marker, marker + '            "flush": self._op_ping,\n', 1
    ))
    result = lint_paths([tmp_path], root=tmp_path, select=["REP011"])
    assert codes(result) == ["REP011"]
    assert "op 'flush' is dispatched but has no row" in result.diagnostics[0].message


def test_acceptance_mutated_schema_version_literal(tmp_path):
    """Bumping SCHEMA_VERSION without regenerating BENCH_perf.json."""
    target = tmp_path / "src" / "repro" / "experiments" / "benchperf.py"
    target.parent.mkdir(parents=True)
    shutil.copy(SRC_TREE / "experiments" / "benchperf.py", target)
    shutil.copy(REPO_ROOT / "BENCH_perf.json", tmp_path / "BENCH_perf.json")
    source = target.read_text()
    assert "SCHEMA_VERSION = 1\n" in source
    target.write_text(source.replace("SCHEMA_VERSION = 1\n", "SCHEMA_VERSION = 99\n", 1))
    result = lint_paths([tmp_path], root=tmp_path, select=["REP012"])
    assert codes(result) == ["REP012"]
    assert "SCHEMA_VERSION = 99" in result.diagnostics[0].message


# ----------------------------------------------------------------------
# Parallel parsing and --changed
# ----------------------------------------------------------------------


def test_parallel_jobs_matches_serial(tmp_path):
    files = {
        f"mod_{i}.py": (
            "import time\n"
            f"async def tick_{i}():\n"
            "    time.sleep(1)\n"
        )
        for i in range(6)
    }
    serial = lint_snippets(tmp_path, files, select=["REP008"], jobs=1)
    parallel = lint_paths([tmp_path], root=tmp_path, select=["REP008"], jobs=3)
    key = [
        (d.path, d.line, d.col, d.code, d.message) for d in serial.diagnostics
    ]
    assert key == [
        (d.path, d.line, d.col, d.code, d.message) for d in parallel.diagnostics
    ]
    assert serial.files_checked == parallel.files_checked == 6


def _run_lint_cli(args: list[str], cwd: Path) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.lintkit", *args],
        cwd=cwd, capture_output=True, text=True,
        env={
            "PYTHONPATH": str(REPO_ROOT / "src"),
            "PATH": "/usr/bin:/bin",
        },
    )


def _git(cwd: Path, *args: str) -> None:
    subprocess.run(
        ["git", "-c", "user.email=t@t", "-c", "user.name=t", *args],
        cwd=cwd, check=True, capture_output=True,
        env={"PATH": "/usr/bin:/bin", "HOME": str(cwd)},
    )


def test_changed_lints_only_touched_files(tmp_path):
    _git(tmp_path, "init", "-q")
    committed = tmp_path / "old.py"
    committed.write_text("import numpy as np\nx = np.random.rand(4)\n")
    _git(tmp_path, "add", "old.py")
    _git(tmp_path, "commit", "-qm", "seed")
    untracked = tmp_path / "new.py"
    untracked.write_text("import numpy as np\ny = np.random.rand(2)\n")

    proc = _run_lint_cli(["--changed", "--no-baseline", "--format", "json"], tmp_path)
    assert proc.returncode == 1, proc.stderr
    report = json.loads(proc.stdout)
    paths = {f["path"] for f in report["findings"]}
    assert paths == {"new.py"}  # the committed, unchanged file is skipped


def test_changed_with_no_changes_exits_zero(tmp_path):
    _git(tmp_path, "init", "-q")
    (tmp_path / "old.py").write_text("VALUE = 1\n")
    _git(tmp_path, "add", "old.py")
    _git(tmp_path, "commit", "-qm", "seed")
    proc = _run_lint_cli(["--changed", "--no-baseline"], tmp_path)
    assert proc.returncode == 0, proc.stderr
    assert "nothing to lint" in proc.stdout


def test_changed_rejects_explicit_paths(tmp_path):
    proc = _run_lint_cli(["--changed", "HEAD", "somefile.py"], tmp_path)
    assert proc.returncode == 2
    assert "mutually exclusive" in proc.stderr


def test_changed_bad_ref_is_usage_error(tmp_path):
    _git(tmp_path, "init", "-q")
    proc = _run_lint_cli(["--changed", "no-such-ref"], tmp_path)
    assert proc.returncode == 2
    assert "no-such-ref" in proc.stderr


# ----------------------------------------------------------------------
# ProjectContext is importable and indexes the real tree
# ----------------------------------------------------------------------


def test_project_context_indexes_real_serving_layer():
    result = lint_paths([SRC_TREE], root=REPO_ROOT, select=["REP008"])
    assert codes(result) == []
    # Build the context directly for a structural sanity check.
    from repro.lintkit.framework import FileContext

    path = SRC_TREE / "serving" / "service.py"
    rel = path.relative_to(REPO_ROOT).as_posix()
    ctx = FileContext(path, rel, path.read_text())
    project = ProjectContext([ctx], root=REPO_ROOT)
    qualname = "repro.serving.service.KnowledgeBaseService.start"
    assert qualname in project.functions
    assert project.functions[qualname].is_async
