"""Unit and property tests for scalar statistics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.analysis.stats import (
    BoxplotStats,
    coefficient_of_variation,
    coefficient_of_variation_rows,
    pairwise_pearson,
    pearson_correlation,
    summarize,
)

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)
arrays = hnp.arrays(dtype=np.float64, shape=st.integers(2, 100), elements=finite)


class TestCoefficientOfVariation:
    def test_constant_series_is_zero(self):
        assert coefficient_of_variation(np.full(10, 5.0)) == 0.0

    def test_known_value(self):
        samples = np.array([1.0, 3.0])  # mean 2, std 1
        assert coefficient_of_variation(samples) == pytest.approx(0.5)

    def test_zero_mean_returns_nan(self):
        assert np.isnan(coefficient_of_variation(np.array([-1.0, 1.0])))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            coefficient_of_variation(np.array([]))

    def test_scale_invariance(self):
        samples = np.array([1.0, 2.0, 5.0, 9.0])
        assert coefficient_of_variation(samples) == pytest.approx(
            coefficient_of_variation(10 * samples)
        )

    def test_bursty_series_has_higher_cv(self):
        steady = np.full(100, 4.0) + np.sin(np.arange(100))
        bursty = np.ones(100)
        bursty[::25] = 60.0
        assert coefficient_of_variation(bursty) > coefficient_of_variation(steady)


class TestPearson:
    def test_perfect_correlation(self):
        x = np.arange(10, dtype=float)
        assert pearson_correlation(x, 3 * x + 1) == pytest.approx(1.0)

    def test_perfect_anticorrelation(self):
        x = np.arange(10, dtype=float)
        assert pearson_correlation(x, -x) == pytest.approx(-1.0)

    def test_constant_input_gives_nan(self):
        assert np.isnan(pearson_correlation(np.ones(5), np.arange(5, dtype=float)))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            pearson_correlation(np.ones(3), np.ones(4))

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            pearson_correlation(np.array([1.0]), np.array([2.0]))

    def test_matches_numpy_corrcoef(self, rng):
        x = rng.normal(size=50)
        y = 0.5 * x + rng.normal(size=50)
        assert pearson_correlation(x, y) == pytest.approx(
            np.corrcoef(x, y)[0, 1], abs=1e-12
        )

    @given(arrays)
    @settings(max_examples=50)
    def test_bounded(self, x):
        y = np.roll(x, 1)
        r = pearson_correlation(x, y)
        assert np.isnan(r) or -1.0 <= r <= 1.0

    @given(arrays)
    @settings(max_examples=50)
    def test_symmetric(self, x):
        y = np.roll(x, 1) + 0.5
        a = pearson_correlation(x, y)
        b = pearson_correlation(y, x)
        assert (np.isnan(a) and np.isnan(b)) or a == pytest.approx(b)


def scalar_pairwise(block: np.ndarray) -> np.ndarray:
    """The pre-campaign idiom: one pearson_correlation call per pair."""
    m = block.shape[0]
    out = np.full((m, m), np.nan)
    for i in range(m):
        for j in range(i, m):
            out[i, j] = out[j, i] = pearson_correlation(block[i], block[j])
    return out


def assert_bitwise(a: np.ndarray, b: np.ndarray) -> None:
    both_nan = np.isnan(a) & np.isnan(b)
    assert np.all((a == b) | both_nan)


class TestPairwisePearson:
    def test_matches_scalar_bitwise(self, rng):
        block = rng.normal(size=(12, 401))
        assert_bitwise(pairwise_pearson(block), scalar_pairwise(block))

    def test_constant_and_nan_rows(self, rng):
        block = rng.normal(size=(6, 200))
        block[1] = 0.25  # idle VM: every pair involving it is nan
        block[4, 50:60] = np.nan  # telemetry gap
        batched = pairwise_pearson(block)
        scalar = scalar_pairwise(block)
        assert_bitwise(batched, scalar)
        # The idle row is nan against every finite row; its pairing with the
        # NaN-gap row has denom sqrt(0 * nan) = nan != 0, so it clamps to 1.0
        # (see below) rather than reporting nan.
        assert np.all(np.isnan(np.delete(batched[1], 4)))
        # The scalar path's documented quirk -- max(-1, min(1, nan)) clamps
        # the NaN-poisoned ratio to 1.0 -- must be reproduced, not "fixed".
        assert batched[4, 0] == scalar[4, 0] == 1.0

    def test_diagonal_matches_scalar(self, rng):
        block = rng.normal(size=(4, 100))
        batched = pairwise_pearson(block)
        for i in range(4):
            assert batched[i, i] == pearson_correlation(block[i], block[i])

    def test_symmetric(self, rng):
        matrix = pairwise_pearson(rng.normal(size=(8, 150)))
        assert np.array_equal(matrix, matrix.T, equal_nan=True)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            pairwise_pearson(np.ones(10))

    def test_too_few_samples_raises(self):
        with pytest.raises(ValueError):
            pairwise_pearson(np.ones((3, 1)))


class TestCoefficientOfVariationRows:
    def test_matches_scalar_bitwise(self, rng):
        block = rng.uniform(0.1, 5.0, size=(9, 168))
        block[3] = 2.5  # constant row: CV exactly 0
        block[5] -= block[5].mean()  # zero-mean row: CV nan
        rows = coefficient_of_variation_rows(block)
        for i in range(block.shape[0]):
            scalar = coefficient_of_variation(block[i])
            assert rows[i] == scalar or (np.isnan(rows[i]) and np.isnan(scalar))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            coefficient_of_variation_rows(np.ones(5))

    def test_zero_columns_raises(self):
        with pytest.raises(ValueError):
            coefficient_of_variation_rows(np.empty((3, 0)))


class TestBoxplotStats:
    def test_quartiles(self):
        stats = BoxplotStats.from_samples(np.arange(1, 101, dtype=float))
        assert stats.median == pytest.approx(50.5)
        assert stats.q1 == pytest.approx(25.75)
        assert stats.q3 == pytest.approx(75.25)
        assert stats.n_samples == 100

    def test_outliers_detected(self):
        samples = np.concatenate([np.arange(1, 101, dtype=float), [1000.0]])
        stats = BoxplotStats.from_samples(samples)
        assert stats.n_outliers == 1
        assert stats.whisker_high <= 100.0

    def test_whiskers_clip_to_data(self):
        stats = BoxplotStats.from_samples(np.array([1.0, 2.0, 3.0, 4.0, 5.0]))
        assert stats.whisker_low == 1.0
        assert stats.whisker_high == 5.0

    def test_nan_dropped(self):
        stats = BoxplotStats.from_samples(np.array([1.0, np.nan, 3.0]))
        assert stats.n_samples == 2

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            BoxplotStats.from_samples(np.array([np.nan]))

    @given(arrays)
    @settings(max_examples=50)
    def test_ordering_invariants(self, samples):
        stats = BoxplotStats.from_samples(samples)
        # Quartiles are ordered; whiskers bracket the in-fence data.  Note a
        # whisker may legitimately sit inside the box (e.g. [0, 1, 1, 1]:
        # the only in-fence minimum is 1.0 > Q1 = 0.75), so we do not assert
        # whisker_low <= q1.
        assert stats.q1 <= stats.median <= stats.q3
        assert stats.whisker_low <= stats.whisker_high
        assert stats.whisker_low >= stats.q1 - 1.5 * stats.iqr - 1e-9
        assert stats.whisker_high <= stats.q3 + 1.5 * stats.iqr + 1e-9
        assert stats.iqr >= 0
        assert 0 <= stats.n_outliers < stats.n_samples or stats.n_outliers == 0


class TestSummarize:
    def test_basic(self):
        stats = summarize(np.arange(1, 101, dtype=float))
        assert stats.minimum == 1.0
        assert stats.maximum == 100.0
        assert stats.mean == pytest.approx(50.5)
        assert stats.n_samples == 100

    def test_percentile_ordering(self):
        stats = summarize(np.random.default_rng(0).normal(size=500))
        assert stats.minimum <= stats.p25 <= stats.median <= stats.p75 <= stats.p95 <= stats.maximum

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize(np.array([]))
