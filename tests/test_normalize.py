"""Unit tests for normalization helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.normalize import (
    normalize_by_reference,
    normalize_to_max,
    normalize_to_mean,
    private_cloud_unit,
)


def test_normalize_by_reference():
    out = normalize_by_reference(np.array([2.0, 4.0]), 2.0)
    assert list(out) == [1.0, 2.0]


def test_normalize_by_reference_rejects_nonpositive():
    with pytest.raises(ValueError):
        normalize_by_reference(np.ones(2), 0.0)


def test_normalize_to_max():
    out = normalize_to_max(np.array([1.0, 5.0, 2.5]))
    assert out.max() == pytest.approx(1.0)
    assert out[0] == pytest.approx(0.2)


def test_normalize_to_max_all_zero():
    out = normalize_to_max(np.zeros(3))
    assert np.all(out == 0)


def test_normalize_to_mean():
    out = normalize_to_mean(np.array([1.0, 3.0]))
    assert out.mean() == pytest.approx(1.0)


def test_normalize_to_mean_rejects_nonpositive_mean():
    with pytest.raises(ValueError):
        normalize_to_mean(np.array([-1.0, 1.0]))


@pytest.mark.parametrize(
    "statistic,expected",
    [("median", 2.0), ("mean", 2.0), ("max", 3.0)],
)
def test_private_cloud_unit(statistic, expected):
    assert private_cloud_unit(np.array([1.0, 2.0, 3.0]), statistic) == expected


def test_private_cloud_unit_unknown_statistic():
    with pytest.raises(ValueError):
        private_cloud_unit(np.ones(3), "mode")


def test_private_cloud_unit_empty():
    with pytest.raises(ValueError):
        private_cloud_unit(np.array([]))
