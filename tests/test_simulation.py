"""Unit and property tests for the discrete-event engine."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.simulation import SimulationError, Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    log = []
    sim.schedule(5.0, lambda: log.append("b"))
    sim.schedule(1.0, lambda: log.append("a"))
    sim.schedule(9.0, lambda: log.append("c"))
    sim.run()
    assert log == ["a", "b", "c"]
    assert sim.events_processed == 3


def test_same_time_fifo():
    sim = Simulator()
    log = []
    for i in range(5):
        sim.schedule(1.0, lambda i=i: log.append(i))
    sim.run()
    assert log == [0, 1, 2, 3, 4]


def test_clock_advances_to_until():
    sim = Simulator()
    sim.run(until=100.0)
    assert sim.now == 100.0


def test_run_until_stops_before_later_events():
    sim = Simulator()
    log = []
    sim.schedule(50.0, lambda: log.append("early"))
    sim.schedule(150.0, lambda: log.append("late"))
    sim.run(until=100.0)
    assert log == ["early"]
    assert sim.pending == 1
    sim.run()
    assert log == ["early", "late"]


def test_schedule_in_past_rejected():
    sim = Simulator(start_time=10.0)
    with pytest.raises(SimulationError):
        sim.schedule(5.0, lambda: None)


def test_schedule_after():
    sim = Simulator()
    fired = []
    sim.schedule_after(3.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [3.0]
    with pytest.raises(SimulationError):
        sim.schedule_after(-1.0, lambda: None)


def test_events_can_schedule_events():
    sim = Simulator()
    log = []

    def chain():
        log.append(sim.now)
        if sim.now < 3:
            sim.schedule(sim.now + 1, chain)

    sim.schedule(0.0, chain)
    sim.run()
    assert log == [0.0, 1.0, 2.0, 3.0]


def test_periodic_action():
    sim = Simulator()
    ticks = []
    sim.schedule_periodic(0.0, 10.0, ticks.append, until=35.0)
    sim.run()
    assert ticks == [0.0, 10.0, 20.0, 30.0]


def test_periodic_requires_positive_interval():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule_periodic(0.0, 0.0, lambda t: None, until=10.0)


def test_periodic_empty_window():
    sim = Simulator()
    ticks = []
    sim.schedule_periodic(10.0, 1.0, ticks.append, until=10.0)
    sim.run()
    assert ticks == []


def test_step_executes_one_event():
    sim = Simulator()
    log = []
    sim.schedule(1.0, lambda: log.append(1))
    sim.schedule(2.0, lambda: log.append(2))
    assert sim.step()
    assert log == [1]
    assert sim.step()
    assert not sim.step()


@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=0, max_size=60))
@settings(max_examples=50)
def test_execution_order_is_sorted(times):
    sim = Simulator()
    fired = []
    for t in times:
        sim.schedule(t, lambda t=t: fired.append(t))
    sim.run()
    assert fired == sorted(times)
    assert sim.events_processed == len(times)


@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=40))
@settings(max_examples=50)
def test_clock_monotone_during_run(times):
    sim = Simulator()
    observed = []
    for t in times:
        sim.schedule(t, lambda: observed.append(sim.now))
    sim.run()
    assert all(a <= b for a, b in zip(observed, observed[1:], strict=False))
