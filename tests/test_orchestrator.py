"""Integration tests for the workload-aware optimization loop."""

from __future__ import annotations

import pytest

from repro.core.knowledge_base import (
    POLICY_OVERSUBSCRIPTION,
    POLICY_REGION_SHIFT,
    POLICY_SPOT_ADOPTION,
    POLICY_VALLEY_FILL,
    WorkloadKnowledgeBase,
)
from repro.management.orchestrator import (
    PolicyOutcome,
    WorkloadAwareOrchestrator,
)
from repro.telemetry.store import TraceStore


@pytest.fixture(scope="module")
def report(medium_trace):
    orchestrator = WorkloadAwareOrchestrator(medium_trace, seed=1)
    return orchestrator.run()


class TestFullLoop:
    def test_all_main_policies_sized(self, report):
        policies = {o.policy for o in report.outcomes}
        assert POLICY_SPOT_ADOPTION in policies
        assert POLICY_OVERSUBSCRIPTION in policies
        assert POLICY_VALLEY_FILL in policies

    def test_spot_metrics(self, report):
        outcome = report.get(POLICY_SPOT_ADOPTION)
        assert outcome is not None
        assert outcome.applicable_subscriptions > 0
        assert 0 < outcome.metrics["cost_saving_fraction"] < 1
        assert outcome.metrics["candidate_fraction"] > 0.5

    def test_oversubscription_metrics(self, report):
        outcome = report.get(POLICY_OVERSUBSCRIPTION)
        assert outcome is not None
        assert outcome.metrics["utilization_gain"] > 0.2
        assert outcome.metrics["violation_rate"] <= 0.05 + 1e-9

    def test_valley_fill_metrics(self, report):
        outcome = report.get(POLICY_VALLEY_FILL)
        assert outcome is not None
        assert outcome.metrics["variance_reduction"] > 0
        assert outcome.metrics["jobs_placed"] > 0

    def test_region_shift_if_applicable(self, report):
        outcome = report.get(POLICY_REGION_SHIFT)
        if outcome is not None:
            assert outcome.metrics["moved_cores"] > 0

    def test_render(self, report):
        text = report.render()
        assert "Workload-aware optimization report" in text
        assert POLICY_SPOT_ADOPTION in text

    def test_reuses_provided_kb(self, medium_trace):
        kb = WorkloadKnowledgeBase.from_trace(medium_trace)
        orchestrator = WorkloadAwareOrchestrator(medium_trace, knowledge_base=kb)
        assert orchestrator.kb is kb


class TestDegenerateInputs:
    def test_empty_trace_yields_empty_report(self):
        store = TraceStore()
        orchestrator = WorkloadAwareOrchestrator(
            store, knowledge_base=WorkloadKnowledgeBase()
        )
        report = orchestrator.run()
        assert report.outcomes == []
        assert report.get("anything") is None

    def test_policy_outcome_render_formats_fractions(self):
        outcome = PolicyOutcome(
            policy="x", applicable_subscriptions=3,
            metrics={"cost_saving_fraction": 0.123, "moved_cores": 96.0},
        )
        text = outcome.render()
        assert "12.3%" in text
        assert "96.00" in text
