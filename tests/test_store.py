"""Unit tests for the trace store and schema."""

from __future__ import annotations

import numpy as np
import pytest

from repro.telemetry.schema import (
    Cloud,
    ClusterInfo,
    EventKind,
    EventRecord,
    NodeInfo,
    RegionInfo,
    SubscriptionInfo,
    VMRecord,
)
from repro.telemetry.store import TraceMetadata, TraceStore


def make_vm(vm_id=1, *, cloud=Cloud.PRIVATE, region="us-east", **overrides) -> VMRecord:
    defaults = dict(
        vm_id=vm_id,
        subscription_id=10,
        deployment_id=20,
        service="svc",
        cloud=cloud,
        region=region,
        cluster_id=0,
        rack_id=0,
        node_id=0,
        cores=4.0,
        memory_gb=16.0,
        created_at=0.0,
        ended_at=float("inf"),
        pattern="stable",
    )
    defaults.update(overrides)
    return VMRecord(**defaults)


class TestVMRecord:
    def test_lifetime(self):
        vm = make_vm(created_at=100.0, ended_at=400.0)
        assert vm.lifetime == 300.0
        assert vm.completed

    def test_censored(self):
        vm = make_vm()
        assert not vm.completed
        assert vm.lifetime == float("inf")


class TestTraceStore:
    def test_add_and_get_vm(self):
        store = TraceStore()
        store.add_vm(make_vm(1))
        assert 1 in store
        assert len(store) == 1
        assert store.vm(1).cores == 4.0

    def test_duplicate_vm_rejected(self):
        store = TraceStore()
        store.add_vm(make_vm(1))
        with pytest.raises(ValueError):
            store.add_vm(make_vm(1))

    def test_finalize_vm(self):
        store = TraceStore()
        store.add_vm(make_vm(1, created_at=50.0))
        store.finalize_vm(1, 500.0)
        assert store.vm(1).ended_at == 500.0
        assert store.vm(1).completed

    def test_finalize_before_creation_rejected(self):
        store = TraceStore()
        store.add_vm(make_vm(1, created_at=100.0))
        with pytest.raises(ValueError):
            store.finalize_vm(1, 50.0)

    def test_reassign_placement(self):
        store = TraceStore()
        store.add_vm(make_vm(1))
        store.reassign_vm_placement(1, node_id=9, rack_id=8, cluster_id=7)
        vm = store.vm(1)
        assert (vm.node_id, vm.rack_id, vm.cluster_id) == (9, 8, 7)

    def test_vm_filters(self):
        store = TraceStore()
        store.add_vm(make_vm(1, cloud=Cloud.PRIVATE, region="a"))
        store.add_vm(make_vm(2, cloud=Cloud.PUBLIC, region="a"))
        store.add_vm(make_vm(3, cloud=Cloud.PUBLIC, region="b", ended_at=10.0))
        assert len(store.vms(cloud=Cloud.PUBLIC)) == 2
        assert len(store.vms(region="a")) == 2
        assert len(store.vms(completed_only=True)) == 1

    def test_events_sorted_lazily(self):
        store = TraceStore()
        store.add_vm(make_vm(1))
        store.add_event(EventRecord(10.0, EventKind.CREATE, 1, Cloud.PRIVATE, "a"))
        store.add_event(EventRecord(5.0, EventKind.CREATE, 1, Cloud.PRIVATE, "a"))
        times = [e.time for e in store.events()]
        assert times == [5.0, 10.0]

    def test_event_filters(self):
        store = TraceStore()
        store.add_event(EventRecord(1.0, EventKind.CREATE, 1, Cloud.PRIVATE, "a"))
        store.add_event(EventRecord(2.0, EventKind.TERMINATE, 1, Cloud.PRIVATE, "a"))
        store.add_event(EventRecord(3.0, EventKind.CREATE, 2, Cloud.PUBLIC, "b"))
        assert len(store.events(kind=EventKind.CREATE)) == 2
        assert len(store.events(cloud=Cloud.PUBLIC)) == 1
        assert list(store.event_times(EventKind.CREATE, region="a")) == [1.0]

    def test_utilization_validation(self):
        store = TraceStore(TraceMetadata())
        store.add_vm(make_vm(1))
        n = store.metadata.n_samples
        with pytest.raises(KeyError):
            store.add_utilization(99, np.zeros(n))
        with pytest.raises(ValueError):
            store.add_utilization(1, np.zeros(n - 1))
        with pytest.raises(ValueError):
            store.add_utilization(1, np.full(n, 2.0))
        store.add_utilization(1, np.full(n, 0.5, dtype=np.float32))
        assert store.has_utilization(1)
        assert store.utilization(1).dtype == np.float32

    def test_utilization_matrix(self):
        store = TraceStore()
        n = store.metadata.n_samples
        for vm_id in (1, 2):
            store.add_vm(make_vm(vm_id))
            store.add_utilization(vm_id, np.full(n, 0.1 * vm_id))
        matrix = store.utilization_matrix([1, 2])
        assert matrix.shape == (2, n)
        with pytest.raises(KeyError):
            store.utilization_matrix([3])

    def test_vm_ids_with_utilization_filtered_by_cloud(self):
        store = TraceStore()
        n = store.metadata.n_samples
        store.add_vm(make_vm(1, cloud=Cloud.PRIVATE))
        store.add_vm(make_vm(2, cloud=Cloud.PUBLIC))
        store.add_utilization(1, np.zeros(n))
        store.add_utilization(2, np.zeros(n))
        assert store.vm_ids_with_utilization(cloud=Cloud.PRIVATE) == [1]

    def test_groupings(self):
        store = TraceStore()
        store.add_vm(make_vm(1, node_id=5, subscription_id=100))
        store.add_vm(make_vm(2, node_id=5, subscription_id=200))
        store.add_vm(make_vm(3, node_id=6, subscription_id=100))
        assert len(store.vms_by_node()[5]) == 2
        assert len(store.vms_by_subscription()[100]) == 2

    def test_merge_disjoint(self):
        a = TraceStore()
        b = TraceStore()
        a.add_vm(make_vm(1))
        b.add_vm(make_vm(2))
        b.add_region(RegionInfo(name="x", tz_offset_hours=0))
        a.merge(b)
        assert len(a) == 2
        assert "x" in a.regions

    def test_merge_colliding_ids_rejected(self):
        a = TraceStore()
        b = TraceStore()
        a.add_vm(make_vm(1))
        b.add_vm(make_vm(1))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_incompatible_grid_rejected(self):
        a = TraceStore(TraceMetadata(duration=604800))
        b = TraceStore(TraceMetadata(duration=86400))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_colliding_topology_ids_rejected(self):
        cluster = ClusterInfo(cluster_id=7, region="r", cloud=Cloud.PRIVATE,
                              n_nodes=2, node_capacity_cores=96,
                              node_capacity_memory_gb=768)
        node = NodeInfo(node_id=9, cluster_id=7, rack_id=0, region="r",
                        cloud=Cloud.PRIVATE, capacity_cores=96,
                        capacity_memory_gb=768)
        sub = SubscriptionInfo(subscription_id=3, cloud=Cloud.PRIVATE, service="s")
        for attach in (
            lambda s: s.add_cluster(cluster),
            lambda s: s.add_node(node),
            lambda s: s.add_subscription(sub),
        ):
            a, b = TraceStore(), TraceStore()
            attach(a)
            attach(b)
            with pytest.raises(ValueError, match="colliding"):
                a.merge(b)

    def test_merge_region_conflict_rejected_identical_tolerated(self):
        a, b = TraceStore(), TraceStore()
        a.add_region(RegionInfo(name="x", tz_offset_hours=0))
        b.add_region(RegionInfo(name="x", tz_offset_hours=0))
        b.add_vm(make_vm(2))
        a.merge(b)  # identical region rows are fine (shared geography)
        assert 2 in a

        c, d = TraceStore(), TraceStore()
        c.add_region(RegionInfo(name="x", tz_offset_hours=0))
        d.add_region(RegionInfo(name="x", tz_offset_hours=-5))
        with pytest.raises(ValueError, match="region"):
            c.merge(d)

    def test_failed_merge_leaves_store_untouched(self):
        a, b = TraceStore(), TraceStore()
        a.add_vm(make_vm(1))
        b.add_vm(make_vm(2))
        b.add_vm(make_vm(1))  # collides with a
        b.add_region(RegionInfo(name="y", tz_offset_hours=2))
        with pytest.raises(ValueError):
            a.merge(b)
        assert 2 not in a
        assert "y" not in a.regions

    def test_merge_adopts_utilization_blocks(self):
        a, b = TraceStore(), TraceStore()
        n = a.metadata.n_samples
        a.add_vm(make_vm(1))
        a.add_utilization(1, np.full(n, 0.25))
        b.add_vm(make_vm(2))
        b.add_vm(make_vm(3))
        b.add_utilization_block([2, 3], np.full((2, n), 0.5))
        a.merge(b)
        assert a.vm_ids_with_utilization() == [1, 2, 3]
        assert float(a.utilization(3)[0]) == 0.5

    def test_event_time_ties_broken_by_kind_then_vm_id(self):
        store = TraceStore()
        # Insert in scrambled order: the sorted output must not depend on it.
        store.add_event(EventRecord(5.0, EventKind.TERMINATE, 2, Cloud.PRIVATE, "a"))
        store.add_event(EventRecord(5.0, EventKind.CREATE, 3, Cloud.PRIVATE, "a"))
        store.add_event(EventRecord(5.0, EventKind.TERMINATE, 1, Cloud.PRIVATE, "a"))
        store.add_event(EventRecord(5.0, EventKind.CREATE, 2, Cloud.PRIVATE, "a"))
        ordered = [(e.kind, e.vm_id) for e in store.events()]
        assert ordered == [
            (EventKind.CREATE, 2),
            (EventKind.CREATE, 3),
            (EventKind.TERMINATE, 1),
            (EventKind.TERMINATE, 2),
        ]

    def test_utilization_block_roundtrip_and_validation(self):
        store = TraceStore()
        n = store.metadata.n_samples
        for vm_id in (1, 2, 3):
            store.add_vm(make_vm(vm_id))
        block = np.tile(np.array([[0.1], [0.2]], dtype=np.float32), (1, n))
        store.add_utilization_block([1, 2], block)
        # Reads are views into the registered block, not copies.
        assert np.shares_memory(store.utilization(2), block)
        assert float(store.utilization(1)[0]) == np.float32(0.1)
        with pytest.raises(ValueError, match="duplicate"):
            store.add_utilization_block([3, 3], np.zeros((2, n)))
        with pytest.raises(ValueError):
            store.add_utilization_block([3], np.zeros((2, n)))  # row mismatch
        with pytest.raises(KeyError):
            store.add_utilization_block([99], np.zeros((1, n)))
        # Re-attaching re-points a VM at its newest series.
        store.add_utilization(1, np.full(n, 0.9))
        assert float(store.utilization(1)[0]) == np.float32(0.9)

    def test_summary(self):
        store = TraceStore()
        store.add_vm(make_vm(1))
        store.add_region(RegionInfo(name="r", tz_offset_hours=-5))
        store.add_cluster(
            ClusterInfo(cluster_id=1, region="r", cloud=Cloud.PRIVATE, n_nodes=2,
                        node_capacity_cores=96, node_capacity_memory_gb=768)
        )
        store.add_node(
            NodeInfo(node_id=1, cluster_id=1, rack_id=1, region="r",
                     cloud=Cloud.PRIVATE, capacity_cores=96, capacity_memory_gb=768)
        )
        store.add_subscription(
            SubscriptionInfo(subscription_id=1, cloud=Cloud.PRIVATE, service="s")
        )
        summary = store.summary()
        assert summary["vms"] == 1
        assert summary["clusters"] == 1
        assert summary["nodes"] == 1
        assert summary["subscriptions"] == 1

    def test_region_names_by_cloud(self):
        store = TraceStore()
        store.add_region(RegionInfo(name="a", tz_offset_hours=0))
        store.add_region(RegionInfo(name="b", tz_offset_hours=0))
        store.add_vm(make_vm(1, cloud=Cloud.PRIVATE, region="a"))
        assert store.region_names() == ["a", "b"]
        assert store.region_names(cloud=Cloud.PRIVATE) == ["a"]


class TestClusterInfo:
    def test_capacity(self):
        cluster = ClusterInfo(
            cluster_id=1, region="r", cloud=Cloud.PRIVATE, n_nodes=10,
            node_capacity_cores=96, node_capacity_memory_gb=768,
        )
        assert cluster.capacity_cores == 960


class TestReadOnlyViews:
    """Regression: reads used to hand out writable views into storage."""

    def _store_with_block(self):
        store = TraceStore()
        n = store.metadata.n_samples
        for vm_id in (1, 2):
            store.add_vm(make_vm(vm_id))
        store.add_utilization_block(
            [1, 2], np.full((2, n), 0.5, dtype=np.float32)
        )
        return store

    def test_utilization_view_is_read_only(self):
        store = self._store_with_block()
        view = store.utilization(1)
        with pytest.raises(ValueError, match="read-only"):
            view[0] = 9.0
        assert float(store.utilization(1)[0]) == 0.5

    def test_iter_utilization_views_are_read_only(self):
        store = self._store_with_block()
        for _vm_id, row in store.iter_utilization():
            with pytest.raises(ValueError, match="read-only"):
                row[:] = 9.0

    def test_matrix_is_a_fresh_copy(self):
        # utilization_matrix returns a gather copy; mutating it must not
        # corrupt the stored series.
        store = self._store_with_block()
        matrix = store.utilization_matrix([1, 2])
        matrix[:] = 9.0
        assert float(store.utilization(1)[0]) == 0.5

    def test_matrix_window(self):
        store = self._store_with_block()
        n = store.metadata.n_samples
        full = store.utilization_matrix([1, 2])
        window = store.utilization_matrix([1, 2], start=3, stop=9)
        np.testing.assert_array_equal(window, full[:, 3:9])
        tail = store.utilization_matrix([2], start=n - 4)
        np.testing.assert_array_equal(tail, full[1:, n - 4 :])

    def test_utilization_mean_matches_dense(self):
        store = TraceStore()
        n = store.metadata.n_samples
        rng = np.random.default_rng(7)
        block = rng.random((5, n)).astype(np.float32)
        for vm_id in range(1, 6):
            store.add_vm(make_vm(vm_id))
        store.add_utilization_block(list(range(1, 6)), block)
        mean = store.utilization_mean(list(range(1, 6)), chunk_rows=2)
        np.testing.assert_allclose(
            mean, block.astype(np.float64).mean(axis=0), rtol=0, atol=1e-12
        )
        assert mean.dtype == np.float64


class TestOrphanAccountingAndCompact:
    def _store(self, n_vms=4):
        store = TraceStore()
        n = store.metadata.n_samples
        for vm_id in range(1, n_vms + 1):
            store.add_vm(make_vm(vm_id))
        store.add_utilization_block(
            list(range(1, n_vms + 1)),
            np.full((n_vms, n), 0.25, dtype=np.float32),
        )
        return store, n

    def test_reattach_counts_orphans(self):
        store, n = self._store()
        assert store.utilization_orphaned_rows == 0
        store.add_utilization(2, np.full(n, 0.75))
        assert store.utilization_orphaned_rows == 1
        assert store.utilization_orphaned_bytes == n * 4
        assert (
            store.utilization_live_bytes
            == store.utilization_bytes - store.utilization_orphaned_bytes
        )
        assert store.summary()["utilization_orphaned_rows"] == 1

    def test_compact_reclaims_orphans_and_preserves_reads(self):
        store, n = self._store()
        store.add_utilization(2, np.full(n, 0.75))
        store.add_utilization(4, np.full(n, 0.9))
        before = {
            vm_id: store.utilization(vm_id).copy() for vm_id in (1, 2, 3, 4)
        }
        reclaimed = store.compact()
        assert reclaimed == 2
        assert store.utilization_orphaned_rows == 0
        assert store.utilization_bytes == store.utilization_live_bytes
        for vm_id, expected in before.items():
            np.testing.assert_array_equal(store.utilization(vm_id), expected)

    def test_compact_drops_fully_dead_blocks(self):
        store, n = self._store(n_vms=2)
        # Re-attach every row of the first block; it is then fully dead.
        store.add_utilization_block(
            [1, 2], np.full((2, n), 0.6, dtype=np.float32)
        )
        assert store.utilization_orphaned_rows == 2
        store.compact()
        assert store.utilization_orphaned_rows == 0
        assert len(store._util_blocks) == 1
        assert float(store.utilization(1)[0]) == np.float32(0.6)

    def test_compact_noop_when_all_live(self):
        store, _n = self._store()
        assert store.compact() == 0

    def test_merge_carries_orphans(self):
        a, b = TraceStore(), TraceStore()
        n = a.metadata.n_samples
        b.add_vm(make_vm(5))
        b.add_utilization(5, np.full(n, 0.1))
        b.add_utilization(5, np.full(n, 0.2))
        assert b.utilization_orphaned_rows == 1
        a.merge(b)
        assert a.utilization_orphaned_rows == 1

    def test_merge_then_mutating_source_block_list_is_safe(self):
        # merge() must not leave the destination aliasing the source's
        # *block list*: clearing the source store afterwards (as a spilling
        # caller would) must not disturb the merged reads.
        a, b = TraceStore(), TraceStore()
        n = a.metadata.n_samples
        b.add_vm(make_vm(7))
        b.add_utilization(7, np.full(n, 0.35))
        a.merge(b)
        b._util_blocks.clear()
        b._util_index.clear()
        assert float(a.utilization(7)[0]) == np.float32(0.35)


class TestTraceMetadataSampleGrid:
    def test_n_samples_floor_division(self):
        # Non-integer ratio floors: 7 full samples fit in 2200s at 300s.
        assert TraceMetadata(duration=2200.0, sample_period=300.0).n_samples == 7

    def test_n_samples_at_scaled_non_integer_durations(self):
        # duration values produced by float scaling (e.g. 0.1 * a week) are
        # not exact multiples of the period; the grid must still be the
        # floor, never one short or one over due to float error.
        for factor in (0.1, 0.3, 0.7, 1.0, 2.5):
            meta = TraceMetadata(duration=factor * 604800.0, sample_period=300.0)
            exact = factor * 604800.0 / 300.0
            assert meta.n_samples == int(exact // 1)
            assert meta.n_samples * 300.0 <= meta.duration

    def test_block_width_must_match_grid(self):
        meta = TraceMetadata(duration=2200.0, sample_period=300.0)
        store = TraceStore(meta)
        store.add_vm(make_vm(1))
        with pytest.raises(ValueError, match="expected 7"):
            store.add_utilization(1, np.zeros(8, dtype=np.float32))
        store.add_utilization(1, np.zeros(7, dtype=np.float32))
        assert store.utilization(1).shape == (7,)
