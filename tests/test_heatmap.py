"""Unit and property tests for 2-D heatmaps."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.analysis.heatmap import build_heatmap

positive = st.floats(min_value=0.1, max_value=1e4, allow_nan=False, allow_infinity=False)
positive_arrays = hnp.arrays(dtype=np.float64, shape=st.integers(1, 150), elements=positive)


def test_mass_conservation_inside_range():
    x = np.array([1.0, 2.0, 4.0, 8.0])
    y = np.array([1.0, 2.0, 4.0, 8.0])
    hm = build_heatmap(x, y, bins=4, x_range=(1, 8), y_range=(1, 8))
    assert hm.total_mass == pytest.approx(1.0)
    assert hm.n_samples == 4


def test_out_of_range_samples_drop_mass():
    x = np.array([1.0, 100.0])
    y = np.array([1.0, 100.0])
    hm = build_heatmap(x, y, bins=4, x_range=(0.5, 10), y_range=(0.5, 10))
    assert hm.total_mass == pytest.approx(0.5)


def test_marginals_sum_to_total():
    rng = np.random.default_rng(0)
    x = rng.uniform(1, 10, 200)
    y = rng.uniform(1, 10, 200)
    hm = build_heatmap(x, y, bins=8)
    assert hm.marginal_x().sum() == pytest.approx(hm.total_mass)
    assert hm.marginal_y().sum() == pytest.approx(hm.total_mass)


def test_log_bins_require_positive():
    with pytest.raises(ValueError):
        build_heatmap(np.array([-1.0, 2.0]), np.array([1.0, 2.0]), log=True)


def test_linear_bins_allow_negative():
    hm = build_heatmap(np.array([-5.0, 5.0]), np.array([-2.0, 2.0]), bins=4, log=False)
    assert hm.total_mass == pytest.approx(1.0)


def test_shape_mismatch_raises():
    with pytest.raises(ValueError):
        build_heatmap(np.ones(3), np.ones(4))


def test_empty_raises():
    with pytest.raises(ValueError):
        build_heatmap(np.array([]), np.array([]))


def test_near_degenerate_span_keeps_edges_increasing():
    # A data span of a few ulps must not collapse into duplicate edges.
    x = np.array([0.1, np.nextafter(0.1, 1.0)])
    hm = build_heatmap(x, x, bins=2)
    assert np.all(np.diff(hm.x_edges) > 0)
    assert np.all(np.diff(hm.y_edges) > 0)


def test_corner_mass_detects_extremes():
    # Concentrated center vs mass pushed to corners.
    center_x = np.full(100, 10.0)
    center_y = np.full(100, 10.0)
    hm_center = build_heatmap(center_x, center_y, bins=8, x_range=(1, 100), y_range=(1, 100))
    corner_x = np.concatenate([np.full(50, 1.0), np.full(50, 100.0)])
    corner_y = np.concatenate([np.full(50, 1.0), np.full(50, 100.0)])
    hm_corner = build_heatmap(corner_x, corner_y, bins=8, x_range=(1, 100), y_range=(1, 100))
    assert hm_corner.corner_mass() > hm_center.corner_mass()


def test_occupied_fraction():
    x = np.array([1.0, 100.0])
    y = np.array([1.0, 100.0])
    hm = build_heatmap(x, y, bins=10, x_range=(1, 100), y_range=(1, 100))
    assert hm.occupied_fraction() == pytest.approx(2 / 100)


@given(positive_arrays)
@settings(max_examples=50)
def test_mass_never_exceeds_one(x):
    hm = build_heatmap(x, x, bins=6)
    assert hm.total_mass <= 1.0 + 1e-9
    assert np.all(hm.density >= 0)


@given(positive_arrays, st.integers(2, 12))
@settings(max_examples=40)
def test_density_shape_matches_bins(x, bins):
    hm = build_heatmap(x, x, bins=bins)
    assert hm.density.shape == (bins, bins)
    assert hm.x_edges.shape == (bins + 1,)
    assert np.all(np.diff(hm.x_edges) > 0)
