"""Tests for the predictive autoscaler ([19]: scale ahead of the ramp)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloud.autoscale import Autoscaler, PredictiveAutoscaler, diurnal_demand
from repro.cloud.entities import RegionSpec, TopologySpec, build_topology
from repro.cloud.platform import CloudPlatform
from repro.cloud.simulation import Simulator
from repro.cloud.sku import NodeSku, VMSku
from repro.telemetry.schema import Cloud
from repro.telemetry.store import TraceStore
from repro.timebase import SECONDS_PER_DAY, SECONDS_PER_HOUR


def make_platform() -> CloudPlatform:
    spec = TopologySpec(
        cloud=Cloud.PUBLIC,
        regions=(RegionSpec("a", 0),),
        clusters_per_region=1,
        racks_per_cluster=2,
        nodes_per_rack=4,
        node_sku=NodeSku("t", 32, 128),
    )
    return CloudPlatform(build_topology(spec), TraceStore(), rng=np.random.default_rng(0))


def run_controller(controller_cls, demand, days=3, interval=900.0, **kwargs):
    platform = make_platform()
    scaler = controller_cls(
        platform,
        subscription_id=1,
        deployment_id=1,
        service="svc",
        region="a",
        sku=VMSku("D1", 1, 4),
        pattern="diurnal",
        demand=demand,
        evaluation_interval=interval,
        **kwargs,
    )
    sim = Simulator()
    horizon = days * SECONDS_PER_DAY
    scaler.install(sim, start=0.0, until=horizon)

    # Measure under-provisioning right before each evaluation fires.
    shortfalls = []

    def probe(now: float) -> None:
        want = max(0, int(demand(now)))
        shortfalls.append(max(0, want - scaler.current_size))

    sim.schedule_periodic(interval / 2, interval, probe, until=horizon)
    sim.run(until=horizon)
    return scaler, float(np.mean(shortfalls))


DEMAND = diurnal_demand(base=2, amplitude=24, tz_offset_hours=0, weekend_factor=1.0)


def test_predictive_reduces_ramp_lag():
    """After a day of history, look-ahead cuts the mean shortfall."""
    _, reactive_shortfall = run_controller(Autoscaler, DEMAND)
    predictive, predictive_shortfall = run_controller(
        PredictiveAutoscaler, DEMAND, lead_time=1800.0
    )
    assert predictive_shortfall < reactive_shortfall
    assert predictive.predictive_scale_outs > 0


def test_prediction_needs_history():
    platform = make_platform()
    scaler = PredictiveAutoscaler(
        platform,
        subscription_id=1,
        deployment_id=1,
        service="s",
        region="a",
        sku=VMSku("D1", 1, 4),
        pattern="diurnal",
        demand=lambda t: 3,
    )
    # With no history the prediction is 0 -> behaves like the reactive one.
    assert scaler._predict(0.0) == 0
    scaler.evaluate(0.0)
    assert scaler.current_size == 3


def test_profile_prediction_converges():
    platform = make_platform()
    scaler = PredictiveAutoscaler(
        platform,
        subscription_id=1,
        deployment_id=1,
        service="s",
        region="a",
        sku=VMSku("D1", 1, 4),
        pattern="diurnal",
        demand=DEMAND,
        evaluation_interval=900.0,
    )
    sim = Simulator()
    scaler.install(sim, start=0.0, until=2 * SECONDS_PER_DAY)
    sim.run()
    # The learned profile should predict the 14:00 peak well.
    predicted = scaler._predict(14 * SECONDS_PER_HOUR)
    actual = DEMAND(14 * SECONDS_PER_HOUR)
    assert abs(predicted - actual) <= max(3, 0.2 * actual)


def test_negative_lead_time_rejected():
    platform = make_platform()
    with pytest.raises(ValueError):
        PredictiveAutoscaler(
            platform,
            subscription_id=1,
            deployment_id=1,
            service="s",
            region="a",
            sku=VMSku("D1", 1, 4),
            pattern="diurnal",
            demand=lambda t: 1,
            lead_time=-1.0,
        )
