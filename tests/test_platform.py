"""Unit tests for the cloud platform layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloud.entities import RegionSpec, TopologySpec, build_topology
from repro.cloud.platform import CloudPlatform, VMRequest
from repro.cloud.sku import NodeSku, VMSku
from repro.telemetry.schema import Cloud, EventKind
from repro.telemetry.store import TraceStore


@pytest.fixture()
def platform():
    spec = TopologySpec(
        cloud=Cloud.PRIVATE,
        regions=(RegionSpec("a", -5), RegionSpec("b", -8)),
        clusters_per_region=1,
        racks_per_cluster=2,
        nodes_per_rack=2,
        node_sku=NodeSku("t", 16, 64),
    )
    store = TraceStore()
    return CloudPlatform(build_topology(spec), store, rng=np.random.default_rng(0))


def request(**overrides) -> VMRequest:
    defaults = dict(
        subscription_id=1,
        deployment_id=1,
        service="svc",
        region="a",
        sku=VMSku("D4", 4, 16),
        pattern="stable",
    )
    defaults.update(overrides)
    return VMRequest(**defaults)


def test_topology_registered_in_store(platform):
    store = platform.store
    assert len(store.regions) == 2
    assert len(store.clusters) == 2
    assert len(store.nodes) == 8


def test_create_vm_records_everything(platform):
    vm_id = platform.create_vm(request(), 100.0)
    vm = platform.store.vm(vm_id)
    assert vm.created_at == 100.0
    assert vm.ended_at == float("inf")
    assert vm.cores == 4
    assert vm.node_id in platform.store.nodes
    events = platform.store.events(kind=EventKind.CREATE)
    assert len(events) == 1 and events[0].time == 100.0
    assert platform.allocated_vm_count == 1


def test_backdated_creation_suppresses_event(platform):
    vm_id = platform.create_vm(request(), 0.0, backdate_to=-5000.0)
    assert platform.store.vm(vm_id).created_at == -5000.0
    assert platform.store.events(kind=EventKind.CREATE) == []


def test_terminate_vm(platform):
    vm_id = platform.create_vm(request(), 0.0)
    platform.terminate_vm(vm_id, 500.0)
    vm = platform.store.vm(vm_id)
    assert vm.ended_at == 500.0
    assert platform.allocated_vm_count == 0
    events = platform.store.events(kind=EventKind.TERMINATE)
    assert len(events) == 1


def test_evict_vm_records_evict_event(platform):
    vm_id = platform.create_vm(request(), 0.0)
    platform.evict_vm(vm_id, 200.0, reason="spot reclaim")
    events = platform.store.events(kind=EventKind.EVICT)
    assert len(events) == 1
    assert events[0].detail == "spot reclaim"
    assert platform.store.vm(vm_id).ended_at == 200.0


def test_allocation_failure_recorded_not_raised(platform):
    # Region 'a' has 4 nodes x 16 cores; a 16-core request fills one node.
    for _ in range(4):
        assert platform.create_vm(request(sku=VMSku("big", 16, 64)), 0.0) is not None
    failed = platform.create_vm(request(sku=VMSku("big", 16, 64)), 1.0)
    assert failed is None
    failures = platform.store.events(kind=EventKind.ALLOCATION_FAILURE)
    assert len(failures) == 1
    assert failures[0].vm_id == -1


def test_region_allocated_cores(platform):
    platform.create_vm(request(region="a"), 0.0)
    platform.create_vm(request(region="b"), 0.0)
    assert platform.region_allocated_cores("a") == 4
    assert platform.region_allocated_cores("b") == 4


def test_vm_ids_monotonic_with_offset():
    spec = TopologySpec(
        cloud=Cloud.PUBLIC,
        regions=(RegionSpec("a", 0),),
        clusters_per_region=1,
        racks_per_cluster=1,
        nodes_per_rack=1,
        node_sku=NodeSku("t", 16, 64),
    )
    platform = CloudPlatform(
        build_topology(spec), TraceStore(), vm_id_offset=1000
    )
    first = platform.create_vm(request(), 0.0)
    second = platform.create_vm(request(), 0.0)
    assert first == 1000 and second == 1001
