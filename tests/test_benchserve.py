"""Tests for the bench-serve harness: comparison logic and determinism.

Mirrors ``tests/test_benchperf.py`` for the serving gate.  Everything here
is pure (no subprocesses, no sockets): the end-to-end path is exercised by
``repro bench-serve`` itself in CI's serving-smoke job.
"""

from __future__ import annotations

import copy
import json

import numpy as np
import pytest

from repro.serving.benchserve import (
    QUERY_MIX,
    SCHEMA_VERSION,
    _build_ops,
    _percentiles,
    compare_to_baseline,
    load_artifact,
    render_comparison,
    write_artifact,
)

pytestmark = pytest.mark.serving


def artifact(**overrides) -> dict:
    """A minimal, internally consistent bench-serve artifact."""
    payload = {
        "bench": "serve",
        "schema_version": SCHEMA_VERSION,
        "seed": 7,
        "scale": 0.12,
        "clients": 4,
        "requests_per_client": 400,
        "speedup": 0.0,
        "calibration_s": 0.5,
        "replay": {"records": 1000, "batches": 10, "wall_s": 1.0},
        "service": {"vms": 100, "events": 900, "records": 40},
        "queries": [
            {"op": "pattern_for_vm", "count": 700, "ok": 650, "not_found": 50,
             "errors": 0, "mean_ms": 1.2, "p50_ms": 1.0, "p95_ms": 3.0,
             "p99_ms": 5.0},
            {"op": "stats", "count": 300, "ok": 300, "not_found": 0,
             "errors": 0, "mean_ms": 0.4, "p50_ms": 0.3, "p95_ms": 0.8,
             "p99_ms": 1.0},
        ],
        "total": {"requests": 1000, "errors": 0, "wall_s": 1.0, "qps": 1000.0,
                  "mean_ms": 1.0, "p50_ms": 0.8, "p95_ms": 2.5, "p99_ms": 4.5},
    }
    payload.update(overrides)
    return payload


def with_p99(base: dict, op: str, p99_ms: float) -> dict:
    candidate = copy.deepcopy(base)
    for row in candidate["queries"]:
        if row["op"] == op:
            row["p99_ms"] = p99_ms
    return candidate


class TestCompareToBaseline:
    def test_identical_artifacts_pass(self):
        result = compare_to_baseline(artifact(), artifact())
        assert result["ok"]
        assert result["failures"] == []
        assert result["machine_factor"] == 1.0
        assert "serve gate: ok" in render_comparison(result)

    def test_p99_within_tolerance_passes(self):
        candidate = with_p99(artifact(), "pattern_for_vm", 9.0)  # +80% < 100%
        assert compare_to_baseline(candidate, artifact())["ok"]

    def test_p99_regression_fails(self):
        candidate = with_p99(artifact(), "pattern_for_vm", 11.0)  # +120%
        result = compare_to_baseline(candidate, artifact())
        assert not result["ok"]
        assert any("pattern_for_vm" in f for f in result["failures"])
        assert "REGRESSED" in render_comparison(result)

    def test_noise_floor_skips_fast_ops(self):
        # stats baseline p99 is 1ms; even tripling it stays under the 2ms
        # floor, so the gate must not fire.
        candidate = with_p99(artifact(), "stats", 1.9)
        result = compare_to_baseline(candidate, artifact())
        assert result["ok"]
        stats_row = next(r for r in result["per_op"] if r["op"] == "stats")
        assert not stats_row["gated"]

    def test_qps_drop_fails(self):
        candidate = artifact()
        candidate["total"] = dict(candidate["total"], qps=500.0)  # -50% > 40%
        result = compare_to_baseline(candidate, artifact())
        assert not result["ok"]
        assert any("QPS" in f for f in result["failures"])

    def test_calibration_normalizes_slower_machine(self):
        # Candidate machine is 2x slower: halved QPS and doubled tails are
        # exactly what the calibration predicts, so the gate passes.
        candidate = artifact(calibration_s=1.0)
        candidate["total"] = dict(candidate["total"], qps=500.0)
        for row in candidate["queries"]:
            row["p99_ms"] *= 2.0
        result = compare_to_baseline(candidate, artifact())
        assert result["ok"]
        assert result["machine_factor"] == 2.0

    def test_query_errors_fail(self):
        candidate = artifact()
        candidate["total"] = dict(candidate["total"], errors=3)
        result = compare_to_baseline(candidate, artifact())
        assert not result["ok"]
        assert any("error" in f for f in result["failures"])

    def test_key_mismatch_fails(self):
        for key, value in (
            ("schema_version", 99),
            ("seed", 8),
            ("scale", 0.3),
            ("clients", 2),
            ("requests_per_client", 10),
        ):
            result = compare_to_baseline(artifact(**{key: value}), artifact())
            assert not result["ok"], key
            assert any(key in f for f in result["failures"]), key

    def test_query_mix_mismatch_fails(self):
        candidate = artifact()
        candidate["queries"] = candidate["queries"][:1]
        result = compare_to_baseline(candidate, artifact())
        assert not result["ok"]
        assert any("query mix" in f for f in result["failures"])

    def test_missing_calibration_fails(self):
        result = compare_to_baseline(artifact(calibration_s=0.0), artifact())
        assert not result["ok"]
        assert any("calibration" in f for f in result["failures"])

    def test_tolerances_configurable(self):
        candidate = with_p99(artifact(), "pattern_for_vm", 9.0)  # +80%
        assert not compare_to_baseline(
            candidate, artifact(), p99_tolerance=0.50
        )["ok"]
        slow = artifact()
        slow["total"] = dict(slow["total"], qps=900.0)  # -10%
        assert not compare_to_baseline(
            slow, artifact(), qps_tolerance=0.05
        )["ok"]


class TestArtifactIO:
    def test_round_trip(self, tmp_path):
        path = write_artifact(artifact(), tmp_path / "BENCH_serve.json")
        assert load_artifact(path) == artifact()

    def test_rejects_other_artifacts(self, tmp_path):
        path = tmp_path / "BENCH_perf.json"
        path.write_text(json.dumps({"bench": "perf"}))
        with pytest.raises(ValueError):
            load_artifact(path)


class TestRequestPlans:
    def test_plans_are_deterministic(self):
        vm_ids = list(range(100, 140))
        sub_ids = list(range(10, 20))
        a = _build_ops(np.random.default_rng(7000), 200, vm_ids, sub_ids)
        b = _build_ops(np.random.default_rng(7000), 200, vm_ids, sub_ids)
        assert a == b
        c = _build_ops(np.random.default_rng(7001), 200, vm_ids, sub_ids)
        assert a != c

    def test_plans_cover_the_mix(self):
        plan = _build_ops(
            np.random.default_rng(1), 500, list(range(10)), list(range(3))
        )
        ops = {op for op, _ in plan}
        assert ops == {name for name, _ in QUERY_MIX}
        for op, args in plan:
            if op == "pattern_for_vm":
                assert isinstance(args["vm_id"], int)
            elif op == "spot_eligibility":
                assert isinstance(args["subscription_id"], int)
            elif op == "allocation_failure_risk":
                assert set(args) == {"cloud", "load_fraction", "recent_creations"}

    def test_percentiles_shape(self):
        stats = _percentiles([1.0, 2.0, 3.0, 4.0])
        assert set(stats) == {"mean_ms", "p50_ms", "p95_ms", "p99_ms"}
        assert stats["p50_ms"] == 2.5
