"""Unit tests for the autoscaler."""

from __future__ import annotations

import numpy as np

from repro.cloud.autoscale import Autoscaler, diurnal_demand
from repro.cloud.entities import RegionSpec, TopologySpec, build_topology
from repro.cloud.platform import CloudPlatform
from repro.cloud.simulation import Simulator
from repro.cloud.sku import NodeSku, VMSku
from repro.telemetry.schema import Cloud, EventKind
from repro.telemetry.store import TraceStore
from repro.timebase import SECONDS_PER_DAY, SECONDS_PER_HOUR


def make_platform(nodes=6) -> CloudPlatform:
    spec = TopologySpec(
        cloud=Cloud.PUBLIC,
        regions=(RegionSpec("a", 0),),
        clusters_per_region=1,
        racks_per_cluster=1,
        nodes_per_rack=nodes,
        node_sku=NodeSku("t", 16, 64),
    )
    return CloudPlatform(build_topology(spec), TraceStore(), rng=np.random.default_rng(0))


def make_scaler(platform, demand, interval=900.0) -> Autoscaler:
    return Autoscaler(
        platform,
        subscription_id=1,
        deployment_id=1,
        service="svc",
        region="a",
        sku=VMSku("D1", 1, 4),
        pattern="diurnal",
        demand=demand,
        evaluation_interval=interval,
    )


def test_bootstrap_matches_demand():
    platform = make_platform()
    scaler = make_scaler(platform, lambda t: 5)
    scaler.bootstrap(0.0)
    assert scaler.current_size == 5
    assert platform.allocated_vm_count == 5


def test_tracks_step_demand():
    platform = make_platform()
    levels = {0: 2, 1: 6, 2: 3}

    def demand(t: float) -> int:
        return levels.get(int(t // SECONDS_PER_HOUR), 3)

    scaler = make_scaler(platform, demand, interval=SECONDS_PER_HOUR)
    scaler.bootstrap(0.0)
    sim = Simulator()
    scaler.install(sim, start=SECONDS_PER_HOUR, until=3 * SECONDS_PER_HOUR)
    sim.run()
    assert scaler.current_size == 3
    assert scaler.scale_out_events >= 6  # 2 bootstrap + 4 scale-out
    assert scaler.scale_in_events == 3


def test_scale_in_terminates_newest_first():
    platform = make_platform()
    scaler = make_scaler(platform, lambda t: 3)
    scaler.bootstrap(0.0)
    first_fleet = list(scaler._fleet)
    scaler.demand = lambda t: 1
    scaler.evaluate(100.0)
    assert scaler._fleet == first_fleet[:1]
    terminated = {e.vm_id for e in platform.store.events(kind=EventKind.TERMINATE)}
    assert terminated == set(first_fleet[1:])


def test_capacity_limit_stops_scale_out():
    platform = make_platform(nodes=1)  # 16 cores only
    scaler = make_scaler(platform, lambda t: 100)
    scaler.evaluate(0.0)
    assert scaler.current_size == 16  # one core each
    # The failed 17th attempt is recorded as an allocation failure.
    assert platform.store.events(kind=EventKind.ALLOCATION_FAILURE)


class TestDiurnalDemand:
    def test_peak_at_local_peak_hour(self):
        demand = diurnal_demand(base=2, amplitude=10, tz_offset_hours=0, peak_hour=14)
        peak = demand(14 * SECONDS_PER_HOUR)
        trough = demand(2 * SECONDS_PER_HOUR)
        assert peak == 12
        assert trough < peak

    def test_weekend_damping(self):
        demand = diurnal_demand(
            base=10, amplitude=0, tz_offset_hours=0, weekend_factor=0.5
        )
        weekday = demand(14 * SECONDS_PER_HOUR)
        weekend = demand(5 * SECONDS_PER_DAY + 14 * SECONDS_PER_HOUR)
        assert weekend == weekday // 2

    def test_timezone_shift(self):
        demand_east = diurnal_demand(base=0, amplitude=10, tz_offset_hours=0)
        demand_west = diurnal_demand(base=0, amplitude=10, tz_offset_hours=-8)
        t = 14 * SECONDS_PER_HOUR  # 14:00 UTC = 06:00 UTC-8
        assert demand_east(t) > demand_west(t)

    def test_never_negative(self):
        demand = diurnal_demand(base=0, amplitude=2, tz_offset_hours=0)
        for hour in range(0, 7 * 24, 3):
            assert demand(hour * SECONDS_PER_HOUR) >= 0
