"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_case_study_command(capsys):
    code = main(["case-study", "--seed", "11"])
    out = capsys.readouterr().out
    assert code == 0
    assert "Canada" in out
    assert "PASS" in out


def test_generate_and_study_round_trip(tmp_path, capsys):
    trace_dir = tmp_path / "trace"
    code = main(
        ["generate", "--seed", "3", "--scale", "0.05", "--out", str(trace_dir)]
    )
    assert code == 0
    assert (trace_dir / "vms.jsonl").exists()

    # Reuse the saved trace for the knowledge-base command.
    kb_path = tmp_path / "kb.json"
    code = main(["kb", "--trace", str(trace_dir), "--out", str(kb_path)])
    assert code == 0
    payload = json.loads(kb_path.read_text())
    assert payload
    out = capsys.readouterr().out
    assert "private" in out


def test_kb_sample_flag(tmp_path, capsys):
    code = main(["kb", "--seed", "3", "--scale", "0.05", "--sample", "2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "policy recommendations" in out


def test_optimize_command(capsys):
    code = main(["optimize", "--seed", "3", "--scale", "0.08"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Workload-aware optimization report" in out


def test_validate_command(capsys):
    code = main(["validate", "--seed", "7", "--scale", "0.15"])
    out = capsys.readouterr().out
    assert "Calibration scorecard" in out
    assert code == 0, out


def test_experiments_manifest_and_exit_gate(tmp_path, capsys):
    """Failing shape checks must surface as a nonzero exit plus manifest rows.

    Scale 0.05 is deliberately too thin for ~5 checks, so this exercises
    the CI gate path: exit code 1, `passed: false` rows in the manifest.
    """
    from repro.experiments.config import clear_trace_cache
    from repro.experiments.runner import load_manifest

    clear_trace_cache()
    manifest_path = tmp_path / "manifest.json"
    code = main(
        [
            "experiments", "--seed", "7", "--scale", "0.05", "--jobs", "2",
            "--cache-dir", str(tmp_path / "cache"),
            "--manifest", str(manifest_path),
        ]
    )
    out = capsys.readouterr().out
    assert code == 1
    assert "Reproduced" in out
    manifest = load_manifest(manifest_path)
    assert manifest["totals"]["failed"] > 0
    assert any(not row["passed"] for row in manifest["experiments"])


def test_experiments_manifest_default_path_next_to_md(tmp_path):
    """Bare --manifest lands next to the EXPERIMENTS.md being written."""
    from repro.experiments.config import clear_trace_cache
    from repro.experiments.runner import load_manifest

    clear_trace_cache()
    md_path = tmp_path / "EXPERIMENTS.md"
    main(
        [
            "experiments", "--seed", "7", "--scale", "0.05",
            "--cache-dir", str(tmp_path / "cache"),
            "--write-md", str(md_path), "--manifest",
        ]
    )
    assert md_path.exists()
    manifest = load_manifest(tmp_path / "manifest.json")
    assert manifest["config"]["scale"] == 0.05
    assert len(manifest["experiments"]) == manifest["totals"]["experiments"]


def test_experiments_metrics_snapshot_matches_manifest(tmp_path):
    """--metrics dumps the run snapshot; per-task walls must match the manifest."""
    from repro.experiments.config import clear_trace_cache
    from repro.experiments.runner import METRICS_SCHEMA_VERSION, load_manifest

    clear_trace_cache()
    manifest_path = tmp_path / "manifest.json"
    metrics_path = tmp_path / "metrics.json"
    main(
        [
            "run", "--seed", "7", "--scale", "0.05", "--jobs", "2",
            "--cache-dir", str(tmp_path / "cache"),
            "--manifest", str(manifest_path),
            "--metrics", str(metrics_path),
        ]
    )
    metrics = json.loads(metrics_path.read_text())
    assert metrics["schema_version"] == METRICS_SCHEMA_VERSION
    counters = metrics["counters"]
    assert counters.get("cache.hit", 0) + counters.get("cache.miss", 0) >= 1
    manifest = load_manifest(manifest_path)
    assert manifest["metrics"] == metrics
    rows = {row["id"]: row for row in manifest["experiments"]}
    assert set(metrics["tasks"]) == set(rows)
    for task_id, task in metrics["tasks"].items():
        assert task["wall_time_s"] == rows[task_id]["wall_time_s"]
        assert any(s["name"] == "task.run" for s in task["spans"])


def test_experiments_profile_writes_pstats(tmp_path):
    import pstats

    from repro.experiments.config import clear_trace_cache

    clear_trace_cache()
    profile_path = tmp_path / "run.pstats"
    main(
        [
            "experiments", "--seed", "7", "--scale", "0.05",
            "--cache-dir", str(tmp_path / "cache"),
            "--profile", str(profile_path),
        ]
    )
    assert profile_path.exists()
    stats = pstats.Stats(str(profile_path))
    assert stats.total_calls > 0
