"""The workload-aware intelligent cloud platform (Section V), end to end.

Builds the workload knowledge base from a synthetic week, routes each
subscription to the policies the paper motivates, sizes every policy's
opportunity on the actual trace, and prints the consolidated optimization
report -- the closed loop the paper proposes as future work.

Run:
    python examples/intelligent_platform.py
"""

from __future__ import annotations

from collections import Counter

from repro import GeneratorConfig, WorkloadKnowledgeBase, generate_trace_pair
from repro.management.orchestrator import WorkloadAwareOrchestrator


def main() -> None:
    print("Generating one synthetic week (private + public) ...")
    trace = generate_trace_pair(GeneratorConfig(seed=3, scale=0.2))

    print("Extracting the workload knowledge base ...")
    kb = WorkloadKnowledgeBase.from_trace(trace)
    routed: Counter[str] = Counter()
    for record in kb.subscriptions():
        for policy in kb.recommend_policies(record.subscription_id):
            routed[policy] += 1
    print(f"  {len(kb)} subscriptions profiled; policy routing:")
    for policy, count in routed.most_common():
        print(f"    {policy:42s} {count:4d}")

    print("\nSizing every policy on the trace ...\n")
    orchestrator = WorkloadAwareOrchestrator(trace, knowledge_base=kb, seed=1)
    report = orchestrator.run()
    print(report.render())

    print(
        "\nEach line above is one implication of the paper turned into a"
        " measurable optimization, driven by the knowledge base."
    )


if __name__ == "__main__":
    main()
