"""Region-agnostic workload detection and hot-to-cold rebalancing.

Reproduces the workflow behind the paper's Canada pilot (Section IV-B):

1. detect region-agnostic subscriptions from cross-region utilization
   correlation;
2. measure per-region capacity health (core utilization rate, underutilized
   core percentage);
3. plan a shift out of the unhealthiest region and evaluate the
   counterfactual, including sustainability-aware target selection.

Run:
    python examples/region_balancing.py
"""

from __future__ import annotations

from repro import Cloud
from repro.core.correlation import region_agnostic_subscriptions
from repro.experiments.case_study import build_canada_scenario
from repro.management.placement import RegionShiftPlanner


def main() -> None:
    trace = build_canada_scenario(seed=11)

    # ------------------------------------------------------------------
    # 1. Region-agnostic detection.
    # ------------------------------------------------------------------
    print("1) Region-agnostic candidates (cross-region correlation >= 0.7)")
    for report in region_agnostic_subscriptions(trace, Cloud.PRIVATE):
        verdict = "REGION-AGNOSTIC" if report.region_agnostic else "region-sensitive"
        print(
            f"   sub {report.subscription_id} ({report.service}) over "
            f"{len(report.regions)} regions: min pairwise r = "
            f"{report.min_pairwise_correlation:.2f} -> {verdict}"
        )

    # ------------------------------------------------------------------
    # 2. Region health snapshots.
    # ------------------------------------------------------------------
    print("\n2) Region capacity health")
    planner = RegionShiftPlanner(trace, cloud=Cloud.PRIVATE)
    for region, snap in planner.all_snapshots().items():
        print(
            f"   {region}: utilization {snap.core_utilization_rate:.0%}, "
            f"underutilized cores {snap.underutilized_percentage:.0%} of allocated"
        )

    # ------------------------------------------------------------------
    # 3. Plan and evaluate the shift.
    # ------------------------------------------------------------------
    print("\n3) Shift plan and counterfactual")
    recommendations = planner.recommend(
        source_region="canada-a", target_region="canada-b"
    )
    for rec in recommendations:
        print(
            f"   move {rec.service} ({rec.moved_cores:.0f} cores) "
            f"{rec.source_region} -> {rec.target_region}: {rec.reason}"
        )
        outcome = planner.evaluate_shift(rec)
        before, after = outcome["source_before"], outcome["source_after"]
        print(
            f"     {rec.source_region}: underutilized "
            f"{before.underutilized_percentage:.0%} -> "
            f"{after.underutilized_percentage:.0%}, utilization "
            f"{before.core_utilization_rate:.0%} -> "
            f"{after.core_utilization_rate:.0%}"
        )
        t_before, t_after = outcome["target_before"], outcome["target_after"]
        print(
            f"     {rec.target_region}: utilization "
            f"{t_before.core_utilization_rate:.0%} -> "
            f"{t_after.core_utilization_rate:.0%} (minor, has idle capacity)"
        )

    print("\n   sustainability-preferred targets:", planner.sustainability_targets())


if __name__ == "__main__":
    main()
