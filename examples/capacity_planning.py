"""Capacity planning for the private cloud.

Exercises the Section III-B implications for private workloads:

1. chance-constrained over-subscription (sweep the safety level and show
   the utilization-gain band);
2. valley filling: schedule deferrable batch jobs into the diurnal valley
   of a region's utilization profile;
3. allocation-failure risk as a function of load and arrival bursts.

Run:
    python examples/capacity_planning.py
"""

from __future__ import annotations

import numpy as np

from repro import Cloud, GeneratorConfig, generate_trace_pair
from repro.core.deployment import vm_count_series
from repro.management.oversubscription import (
    ChanceConstrainedOversubscriber,
    sweep_epsilon,
)
from repro.management.prediction import AllocationFailurePredictor
from repro.management.scheduling import ValleyScheduler, jobs_from_fraction
from repro.telemetry.counters import region_average_utilization


def main() -> None:
    trace = generate_trace_pair(GeneratorConfig(seed=11, scale=0.2))

    # ------------------------------------------------------------------
    # 1. Over-subscription: how much utilization does each safety level buy?
    # ------------------------------------------------------------------
    print("1) Chance-constrained over-subscription (one 96-core node)")
    oversubscriber = ChanceConstrainedOversubscriber(
        trace, cloud=Cloud.PRIVATE, max_candidates=400
    )
    baseline = oversubscriber.pack_baseline(96.0)
    print(
        f"   baseline: {baseline.n_vms_packed} VMs reserved "
        f"{baseline.reserved_cores:.0f}c, mean utilization "
        f"{baseline.mean_utilization:.0%}"
    )
    for outcome, gain in sweep_epsilon(oversubscriber, 96.0):
        print(
            f"   eps={outcome.epsilon:<6g} packs {outcome.n_vms_packed:3d} VMs, "
            f"utilization {outcome.mean_utilization:.0%} ({gain:+.0%} vs baseline), "
            f"overload probability {outcome.violation_probability:.3f}"
        )

    # ------------------------------------------------------------------
    # 2. Valley filling with deferrable jobs.
    # ------------------------------------------------------------------
    print("\n2) Deferrable-job valley filling (us-east, private cloud)")
    region = "us-east"
    capacity = sum(
        c.capacity_cores
        for c in trace.clusters.values()
        if c.region == region and str(c.cloud) == "private"
    )
    counts = vm_count_series(trace, Cloud.PRIVATE, region=region).astype(np.float64)
    # Approximate used cores: VM count x average cores x average utilization.
    avg_util = float(region_average_utilization(trace, cloud=Cloud.PRIVATE, region=region).mean())
    used_cores = counts * 5.5 * avg_util
    scheduler = ValleyScheduler(used_cores, capacity)
    jobs = jobs_from_fraction(used_cores, capacity, fill_fraction=0.3)
    outcome = scheduler.schedule(jobs)
    print(
        f"   {len(outcome.scheduled)} jobs placed, {len(outcome.rejected)} rejected; "
        f"peak-to-valley {outcome.peak_to_valley_before:.0f} -> "
        f"{outcome.peak_to_valley_after:.0f} cores "
        f"(variance reduced by {outcome.variance_reduction:.0%})"
    )

    # ------------------------------------------------------------------
    # 3. Allocation-failure risk model, trained on an under-provisioned
    #    fleet (failures only appear when clusters run hot).
    # ------------------------------------------------------------------
    print("\n3) Allocation-failure risk (load x burst features)")
    from dataclasses import replace

    from repro import private_profile
    from repro.workloads.generator import TraceGenerator

    stressed_profile = replace(
        private_profile(),
        clusters_per_region=1,
        racks_per_cluster=2,
        nodes_per_rack=3,
    )
    stressed = TraceGenerator(
        stressed_profile,
        GeneratorConfig(seed=11, scale=0.25, synthesize_utilization=False),
    ).generate()
    n_failures = len(
        [e for e in stressed.events() if e.kind.value == "allocation_failure"]
    )
    print(f"   stressed fleet observed {n_failures} allocation failures")
    try:
        predictor = AllocationFailurePredictor().fit(stressed, Cloud.PRIVATE)
        for load, burst in ((0.5, 2), (0.9, 2), (0.9, 120)):
            risk = predictor.predict_risk(load, burst)
            print(
                f"   load={load:.0%} arrivals/h={burst:>3d} -> "
                f"failure risk {risk:.1%}"
            )
    except ValueError as exc:
        print(f"   (skipped: {exc})")


if __name__ == "__main__":
    main()
