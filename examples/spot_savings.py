"""Spot-VM adoption analysis for the public cloud.

The paper observes that 81% of public-cloud VMs are short-lived and suggests
running them as spot VMs "to reduce cost and improve platform resource
utilization, especially during valley hours".  This example:

1. runs the what-if: which completed public VMs could have been spot, and
   what does that save;
2. trains the eviction-risk predictor ([15]) on simulated spot history and
   shows how risk varies with capacity pressure.

Run:
    python examples/spot_savings.py
"""

from __future__ import annotations

import numpy as np

from repro import GeneratorConfig, generate_trace_pair
from repro.management.spot import (
    SpotAdoptionAdvisor,
    SpotEvictionModel,
    SpotEvictionPredictor,
)


def main() -> None:
    trace = generate_trace_pair(GeneratorConfig(seed=5, scale=0.2))

    # ------------------------------------------------------------------
    # 1. The what-if analysis.
    # ------------------------------------------------------------------
    print("1) Spot adoption what-if (public cloud)")
    advisor = SpotAdoptionAdvisor(trace, spot_discount=0.7)
    report = advisor.analyze()
    print(f"   completed public VMs: {report.n_total_completed}")
    print(
        f"   spot candidates:      {report.n_candidates} "
        f"({report.candidate_fraction:.0%})"
    )
    print(
        f"   candidate core-hours: {report.candidate_core_hours:,.0f} of "
        f"{report.total_core_hours:,.0f}"
    )
    print(f"   bill reduction:       {report.cost_saving_fraction:.1%}")
    print(f"   expected evictions:   {report.expected_evictions:.1f}")
    print(f"   valley-hour starts:   {report.valley_start_fraction:.0%}")

    # ------------------------------------------------------------------
    # 2. Eviction-risk predictor on synthetic spot history.
    # ------------------------------------------------------------------
    print("\n2) Eviction-risk predictor (trained on simulated history)")
    rng = np.random.default_rng(0)
    model = SpotEvictionModel(knee=0.7, max_rate=0.35)
    n = 20_000
    pressures = rng.uniform(0.3, 1.0, n)
    cores = rng.choice([1, 2, 4, 8, 16], n).astype(float)
    hours = rng.uniform(0, 24, n)
    evicted = np.array(
        [rng.random() < model.hourly_eviction_probability(p) for p in pressures],
        dtype=float,
    )
    predictor = SpotEvictionPredictor().fit(pressures, cores, hours, evicted)
    for pressure in (0.5, 0.75, 0.9, 0.98):
        risk = predictor.predict_risk(pressure, cores=4, hour_of_day=14)
        truth = model.hourly_eviction_probability(pressure)
        print(
            f"   pressure={pressure:.0%}: predicted {risk:.1%} "
            f"(generating model {truth:.1%})"
        )


if __name__ == "__main__":
    main()
