"""Tour of the centralized workload knowledge base (Section V).

Builds the knowledge base from a synthetic trace, queries it, asks for
policy recommendations per workload, and round-trips it through JSON --
"the key pillar of the future workload-aware intelligent cloud platform".

Run:
    python examples/knowledge_base_tour.py
"""

from __future__ import annotations

import tempfile
from collections import Counter
from pathlib import Path

from repro import Cloud, GeneratorConfig, WorkloadKnowledgeBase, generate_trace_pair


def main() -> None:
    trace = generate_trace_pair(GeneratorConfig(seed=3, scale=0.15))
    print("Extracting workload knowledge from telemetry ...")
    kb = WorkloadKnowledgeBase.from_trace(trace)
    print(f"  {len(kb)} subscriptions profiled\n")

    for cloud in (Cloud.PRIVATE, Cloud.PUBLIC):
        print(f"{cloud} cloud summary:")
        for key, value in kb.cloud_summary(cloud).items():
            print(f"  {key:24s} {value:10.2f}")
        print(f"  services: {kb.services(cloud=cloud)}\n")

    print("Region-agnostic candidates (private):")
    for record in kb.region_agnostic_candidates(cloud=Cloud.PRIVATE)[:5]:
        print(
            f"  sub {record.subscription_id} ({record.service}), "
            f"{record.n_regions} regions, dominant pattern "
            f"{record.dominant_pattern or '?'}"
        )

    print("\nPolicy recommendations across the fleet:")
    policy_counts: Counter[str] = Counter()
    for record in kb.subscriptions():
        for policy in kb.recommend_policies(record.subscription_id):
            policy_counts[policy] += 1
    for policy, count in policy_counts.most_common():
        print(f"  {policy:40s} {count:4d} subscriptions")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "kb.json"
        kb.to_json(path)
        restored = WorkloadKnowledgeBase.from_json(path)
        print(
            f"\nJSON round-trip: {path.stat().st_size:,} bytes, "
            f"{len(restored)} records restored"
        )


if __name__ == "__main__":
    main()
