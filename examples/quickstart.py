"""Quickstart: generate a week of private+public cloud telemetry and
reproduce the paper's headline comparison.

Run:
    python examples/quickstart.py [--scale 0.2] [--seed 7]
"""

from __future__ import annotations

import argparse
import time

from repro import GeneratorConfig, generate_trace_pair, run_study


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    print(f"Generating one synthetic week (seed={args.seed}, scale={args.scale}) ...")
    t0 = time.time()
    trace = generate_trace_pair(GeneratorConfig(seed=args.seed, scale=args.scale))
    summary = trace.summary()
    print(
        f"  {summary['vms']} VMs, {summary['events']} lifecycle events, "
        f"{summary['utilization_series']} utilization series "
        f"({time.time() - t0:.1f}s)\n"
    )

    print("Running the full characterization study (Sections III & IV) ...\n")
    study = run_study(trace)
    print(study.report())


if __name__ == "__main__":
    main()
