"""Lifetime-aware migration off an unhealthy node (the paper's Section I
motivating example).

"To avoid service interruption, the cloud platform could choose to migrate
out VMs from nodes with unhealthy signals ... With knowledge of the lifetime
of VMs running on this node, the cloud platform can optimize this procedure
by only migrating out VMs with long remaining time."

This example trains the lifetime predictor on the first half of the week,
then compares migrate-everything against lifetime-aware migration on nodes
that receive an unhealthy signal mid-week.

Run:
    python examples/unhealthy_node_migration.py
"""

from __future__ import annotations

import numpy as np

from repro import Cloud, GeneratorConfig, private_profile
from repro.management.prediction import LifetimePredictor
from repro.workloads.generator import TraceGenerator, GeneratorConfig as GenConfig


def main() -> None:
    config = GenConfig(seed=9, scale=0.15, synthesize_utilization=False)
    generator = TraceGenerator(private_profile(), config)
    trace = generator.generate()

    print("Training the lifetime predictor on the first half of the week ...")
    predictor = LifetimePredictor()
    evaluation = predictor.evaluate(trace)
    print(
        f"  holdout accuracy {evaluation.accuracy:.0%} "
        f"(base rate {evaluation.base_rate:.0%}, "
        f"{evaluation.n_train} train / {evaluation.n_test} test VMs)\n"
    )

    # Mid-week, some nodes report unhealthy signals.  Which VMs to migrate?
    # Pick nodes that host freshly created (likely short-lived) VMs -- these
    # are exactly the nodes where the lifetime-aware policy pays off.
    now = trace.metadata.duration / 2
    rng = np.random.default_rng(1)
    candidate_nodes = []
    for node_id, vms in trace.vms_by_node(cloud=Cloud.PRIVATE).items():
        alive = [vm for vm in vms if vm.created_at <= now < vm.ended_at]
        fresh = [vm for vm in alive if now - vm.created_at < 1800]
        if len(alive) >= 3 and fresh:
            candidate_nodes.append(node_id)
    unhealthy = rng.choice(
        candidate_nodes, size=min(5, len(candidate_nodes)), replace=False
    )

    print("Lifetime-aware migration plans (vs migrate-everything):")
    total_alive = 0
    total_migrated = 0
    total_wasted = 0  # migrations of VMs that would have ended soon anyway
    for node_id in unhealthy:
        alive = [
            vm
            for vm in trace.vms(cloud=Cloud.PRIVATE)
            if vm.node_id == node_id and vm.created_at <= now < vm.ended_at
        ]
        remaining = {
            vm.vm_id: predictor.predict_remaining_time(vm, now=now) for vm in alive
        }
        # plan_migrations expects a platform-shaped object; build the plan
        # directly from predictions here.
        migrate = [v for v, t in remaining.items() if t > 2 * 3600]
        leave = [v for v in remaining if v not in set(migrate)]
        truly_short = {
            vm.vm_id for vm in alive if vm.ended_at - now <= 2 * 3600
        }
        wasted = len(truly_short) - len([v for v in leave if v in truly_short])
        total_alive += len(alive)
        total_migrated += len(migrate)
        total_wasted += max(0, wasted)
        print(
            f"  node {node_id}: {len(alive)} VMs alive -> migrate "
            f"{len(migrate)}, leave {len(leave)} "
            f"(naive policy would migrate all {len(alive)})"
        )

    if total_alive:
        saved = total_alive - total_migrated
        print(
            f"\nSummary: lifetime-aware policy migrates {total_migrated}/"
            f"{total_alive} VMs, avoiding {saved} migrations "
            f"({total_wasted} would-have-finished VMs still moved)."
        )


if __name__ == "__main__":
    main()
